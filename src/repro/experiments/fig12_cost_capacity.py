"""Figure 12: cost vs insufficient capacity over 4.5 months of load.

The paper simulates every allocation strategy over August–December 2016
(including Black Friday), sweeping the target throughput ``Q`` (or the
equivalent buffer knob) to trace a capacity-cost curve per strategy:

* **P-Store Oracle** — perfect predictions; the performance upper bound
  (violations still non-zero because predictions have 5-minute
  granularity while instantaneous load spikes within slots);
* **P-Store SPAR** — close behind the oracle; its default settings give
  a good cost/capacity trade-off (cost 1.0 on the normalized axis);
* **Reactive** — can reach low violation rates only by over-buffering,
  i.e. at higher cost;
* **Simple** (day/night) — poor: breaks on any deviation;
* **Static** — worst: inflexible and unable to survive Black Friday
  without paying for peak capacity at all times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.params import PAPER_SATURATION_RATE, SystemParameters
from repro.experiments.common import PaperComparison, comparison_table, format_table
from repro.prediction.oracle import OraclePredictor
from repro.prediction.spar import SPARPredictor
from repro.simulation.capacity_sim import CapacitySimResult, CapacitySimulator
from repro.strategies import (
    PStoreStrategy,
    ReactiveStrategy,
    SimpleStrategy,
    StaticStrategy,
)
from repro.workloads.b2w import generate_b2w_long_trace
from repro.workloads.trace import LoadTrace

#: Load scale so the daily peak needs ~8 machines at the default Q (the
#: benchmark-scale calibration; see DESIGN.md).
TRACE_SCALE = 6.0
SLOT_SECONDS = 300.0
INTERVALS_PER_DAY = int(86400 / SLOT_SECONDS)
MAX_MACHINES = 20

DEFAULT_Q_FRACTIONS = (0.50, 0.575, 0.65, 0.725, 0.78)
DEFAULT_REACTIVE_HEADROOMS = (0.0, 0.10, 0.20, 0.35, 0.50)
DEFAULT_SIMPLE_DAY_MACHINES = (8, 9, 11, 13, 16)
DEFAULT_STATIC_MACHINES = (4, 6, 8, 10, 12, 14)


@dataclass(frozen=True)
class SweepPoint:
    """One simulated configuration on the Figure 12 plane."""

    strategy: str
    parameter: float
    cost: float
    pct_time_insufficient: float
    avg_machines: float

    def normalized(self, reference_cost: float) -> Tuple[float, float]:
        return (self.cost / reference_cost, self.pct_time_insufficient)


@dataclass
class Fig12Result:
    points: List[SweepPoint]
    reference_cost: float  # default P-Store SPAR cost (normalized x = 1)

    def by_strategy(self) -> Dict[str, List[SweepPoint]]:
        grouped: Dict[str, List[SweepPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.strategy, []).append(point)
        return grouped

    def default_point(self, strategy: str) -> SweepPoint:
        candidates = [p for p in self.points if p.strategy == strategy]
        if strategy in ("pstore-spar", "pstore-oracle"):
            return min(candidates, key=lambda p: abs(p.parameter - 0.65))
        if strategy == "reactive":
            return min(candidates, key=lambda p: p.parameter)
        raise KeyError(f"no default point for {strategy}")

    def format_report(self) -> str:
        spar = self.default_point("pstore-spar")
        oracle = self.default_point("pstore-oracle")
        reactive = self.default_point("reactive")
        comparisons = [
            PaperComparison(
                "oracle <= SPAR violations (upper bound)", "yes",
                str(oracle.pct_time_insufficient <= spar.pct_time_insufficient + 1e-9),
            ),
            PaperComparison(
                "oracle violations non-zero (sub-slot spikes)", "yes",
                str(oracle.pct_time_insufficient > 0.0),
            ),
            PaperComparison(
                "reactive default violates more than P-Store", "yes",
                str(reactive.pct_time_insufficient > spar.pct_time_insufficient),
            ),
        ]
        rows = [
            (
                p.strategy,
                f"{p.parameter:g}",
                f"{p.cost / self.reference_cost:.3f}",
                f"{p.pct_time_insufficient:.3f}",
                f"{p.avg_machines:.2f}",
            )
            for p in self.points
        ]
        table = format_table(
            ("strategy", "param", "norm. cost", "% insufficient", "avg mach"),
            rows,
            title="Figure 12 sweep (cost normalized to default P-Store)",
        )
        return (
            comparison_table(comparisons, "Figure 12 — cost vs insufficient capacity")
            + "\n\n"
            + table
        )


def _params(q_fraction: float) -> SystemParameters:
    return SystemParameters(
        q=PAPER_SATURATION_RATE * q_fraction,
        q_max=PAPER_SATURATION_RATE * 0.80,
        interval_seconds=SLOT_SECONDS,
        partitions_per_node=6,
    )


def build_trace(
    num_days: int = 165, *, seed: int = 20160801, black_friday_day: int = 144
) -> Tuple[np.ndarray, LoadTrace]:
    """4-week training series plus the evaluation trace."""
    full = generate_b2w_long_trace(
        num_days=num_days,
        black_friday_day=black_friday_day,
        slot_seconds=SLOT_SECONDS,
        seed=seed,
    ).scaled(TRACE_SCALE)
    train = full.values[: 28 * INTERVALS_PER_DAY]
    eval_trace = full[28 * INTERVALS_PER_DAY :]
    return train, eval_trace


def run(
    fast: bool = False,
    seed: int = 20160801,
    q_fractions: Optional[Tuple[float, ...]] = None,
) -> Fig12Result:
    """Sweep all strategies over the 4.5-month trace."""
    num_days = 70 if fast else 165
    bf_day = 56 if fast else 144
    q_fractions = q_fractions or (
        DEFAULT_Q_FRACTIONS[::2] if fast else DEFAULT_Q_FRACTIONS
    )
    headrooms = DEFAULT_REACTIVE_HEADROOMS[::2] if fast else DEFAULT_REACTIVE_HEADROOMS
    simple_days = DEFAULT_SIMPLE_DAY_MACHINES[::2] if fast else DEFAULT_SIMPLE_DAY_MACHINES
    statics = DEFAULT_STATIC_MACHINES[::2] if fast else DEFAULT_STATIC_MACHINES

    train, eval_trace = build_trace(num_days, seed=seed, black_friday_day=bf_day)

    spar = SPARPredictor(
        period=INTERVALS_PER_DAY, n_periods=7, n_recent=12, max_horizon=12
    )
    spar.fit(train)

    points: List[SweepPoint] = []

    def simulate(q_fraction: float, strategy) -> CapacitySimResult:
        simulator = CapacitySimulator(_params(q_fraction), max_machines=MAX_MACHINES)
        return simulator.run(eval_trace, strategy)

    for q_fraction in q_fractions:
        result = simulate(
            q_fraction,
            PStoreStrategy(spar, horizon=12, training_prefix=train),
        )
        points.append(
            SweepPoint("pstore-spar", q_fraction, result.cost,
                       result.pct_time_insufficient, result.average_machines())
        )
        result = simulate(
            q_fraction,
            PStoreStrategy(
                OraclePredictor(eval_trace.values), horizon=12, name="pstore-oracle"
            ),
        )
        points.append(
            SweepPoint("pstore-oracle", q_fraction, result.cost,
                       result.pct_time_insufficient, result.average_machines())
        )

    for headroom in headrooms:
        result = simulate(0.65, ReactiveStrategy(headroom=headroom))
        points.append(
            SweepPoint("reactive", headroom, result.cost,
                       result.pct_time_insufficient, result.average_machines())
        )

    for day_machines in simple_days:
        result = simulate(
            0.65,
            SimpleStrategy(
                day_machines, night_machines=4, morning_hour=6.0, night_hour=23.9
            ),
        )
        points.append(
            SweepPoint("simple", day_machines, result.cost,
                       result.pct_time_insufficient, result.average_machines())
        )

    for machines in statics:
        result = simulate(0.65, StaticStrategy(machines))
        points.append(
            SweepPoint("static", machines, result.cost,
                       result.pct_time_insufficient, result.average_machines())
        )

    reference = next(
        p.cost for p in points
        if p.strategy == "pstore-spar" and abs(p.parameter - 0.65) < 1e-9
    )
    return Fig12Result(points=points, reference_cost=reference)
