"""Extension: predictive provisioning on Wikipedia-like workloads.

The paper validates SPAR on Wikipedia page views (Figure 6) to show the
predictive machinery generalizes beyond retail, but only evaluates the
*full system* on B2W.  This extension closes that loop: it runs the
whole P-Store pipeline — SPAR, planner, capacity simulation — on the
hourly Wikipedia-like traces for both language editions, against the
reactive and static baselines.

Expected shape (following the paper's reasoning): P-Store works on both
editions; because the German trace is less predictable (Figure 6b), its
SPAR-driven violations are higher than English's, yet still far below
the reactive baseline at comparable cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.params import PAPER_SATURATION_RATE, SystemParameters
from repro.experiments.common import PaperComparison, comparison_table, format_table
from repro.prediction.spar import SPARPredictor
from repro.simulation.capacity_sim import CapacitySimResult, CapacitySimulator
from repro.strategies import PStoreStrategy, ReactiveStrategy, StaticStrategy
from repro.workloads.wikipedia import generate_wikipedia_trace

HOURS_PER_DAY = 24
SLOT_SECONDS = 3600.0
#: Planner horizon in hours; comfortably covers 2D/P (~26 minutes).
HORIZON_HOURS = 6


@dataclass
class ExtWikiResult:
    #: results[language][strategy] -> CapacitySimResult
    results: Dict[str, Dict[str, CapacitySimResult]]

    def format_report(self) -> str:
        en = self.results["en"]
        de = self.results["de"]
        comparisons = [
            PaperComparison(
                "P-Store works beyond retail", "expected (Sec. 5)",
                f"en {en['pstore-spar'].pct_time_insufficient:.2f}% / "
                f"de {de['pstore-spar'].pct_time_insufficient:.2f}% insufficient",
            ),
            PaperComparison(
                "less predictable de -> more violations than en", "expected",
                str(
                    de["pstore-spar"].pct_time_insufficient
                    >= en["pstore-spar"].pct_time_insufficient
                ),
            ),
            PaperComparison(
                "P-Store cheaper than static peak provisioning", "yes",
                f"en {en['pstore-spar'].cost / en['static-10'].cost:.2f}x / "
                f"de {de['pstore-spar'].cost / de['static-10'].cost:.2f}x",
            ),
        ]
        rows = []
        for language, by_strategy in self.results.items():
            for name, result in by_strategy.items():
                rows.append(
                    (
                        language,
                        name,
                        f"{result.cost:.0f}",
                        f"{result.average_machines():.2f}",
                        f"{result.pct_time_insufficient:.3f}",
                        result.moves,
                    )
                )
        table = format_table(
            ("edition", "strategy", "cost", "avg mach", "% insufficient", "moves"),
            rows,
        )
        return (
            comparison_table(
                comparisons, "Extension — P-Store on Wikipedia-like workloads"
            )
            + "\n\n"
            + table
        )


def run(fast: bool = False, seed: int = 20160701) -> ExtWikiResult:
    """Run the full pipeline per language edition."""
    train_days = 14 if fast else 28
    eval_days = 14 if fast else 28
    params = SystemParameters(
        q=PAPER_SATURATION_RATE * 0.65,
        q_max=PAPER_SATURATION_RATE * 0.80,
        interval_seconds=SLOT_SECONDS,
        partitions_per_node=6,
    )
    results: Dict[str, Dict[str, CapacitySimResult]] = {}
    for language in ("en", "de"):
        trace = generate_wikipedia_trace(language, train_days + eval_days, seed=seed)
        # Calibrate so the daily peak needs ~8 machines at Q.
        peak_rate = trace.per_second().max()
        trace = trace.scaled(8.0 * params.q / peak_rate)
        train = trace.values[: train_days * HOURS_PER_DAY]
        eval_trace = trace[train_days * HOURS_PER_DAY :]

        spar = SPARPredictor(
            period=HOURS_PER_DAY,
            n_periods=7,
            n_recent=6,
            max_horizon=HORIZON_HOURS,
        ).fit(train)
        simulator = CapacitySimulator(params, max_machines=16)
        results[language] = {
            "pstore-spar": simulator.run(
                eval_trace,
                PStoreStrategy(spar, horizon=HORIZON_HOURS, training_prefix=train),
            ),
            "reactive": simulator.run(
                eval_trace, ReactiveStrategy(detect_intervals=1)
            ),
            "static-10": simulator.run(eval_trace, StaticStrategy(10)),
        }
    return ExtWikiResult(results=results)
