"""Figure 5: SPAR's predictions for the B2W load.

(a) 60-minute-ahead predictions tracking the actual load over a 24-hour
period outside the training set; (b) mean relative error as a function
of the forecasting period tau, decaying gracefully from ~6% at 10
minutes to 10.4% at 60 minutes.

Protocol (Sections 5 and 7): 1-minute slots (period T = 1440), 4 weeks
of training, n = 7 previous periods, m = 30 recent offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


from repro.experiments.common import PaperComparison, comparison_table, format_table
from repro.prediction.rolling import RollingForecast, rolling_forecast
from repro.prediction.spar import SPARPredictor
from repro.workloads.b2w import generate_b2w_trace
from repro.workloads.trace import LoadTrace

#: The paper's headline number: MRE at tau = 60 minutes.
PAPER_MRE_TAU60_PCT = 10.4
#: Eyeballed Figure 5b envelope: MRE grows from ~6% to ~10% over tau.
PAPER_MRE_RANGE_PCT = (5.0, 11.0)

DEFAULT_TAUS = (10, 20, 30, 40, 50, 60)


@dataclass
class Fig5Result:
    taus: tuple
    mre_pct: Dict[int, float]
    day_forecast: RollingForecast
    trace: LoadTrace
    train_days: int

    def format_report(self) -> str:
        comparisons = [
            PaperComparison(
                "MRE @ tau=60 min", f"{PAPER_MRE_TAU60_PCT:.1f}%",
                f"{self.mre_pct[max(self.taus)]:.1f}%",
            ),
            PaperComparison(
                "MRE decays gracefully with tau", "yes",
                str(self.mre_pct[self.taus[0]] <= self.mre_pct[self.taus[-1]]),
            ),
        ]
        table = format_table(
            ("tau (min)", "MRE %"),
            [(tau, f"{self.mre_pct[tau]:.2f}") for tau in self.taus],
        )
        return (
            comparison_table(comparisons, "Figure 5 — SPAR on the B2W load")
            + "\n\n"
            + table
        )


def run(
    fast: bool = False,
    seed: int = 20160601,
    taus: Optional[tuple] = None,
) -> Fig5Result:
    """Train SPAR on 4 weeks of B2W load and score it on held-out days."""
    train_days = 10 if fast else 28
    eval_days = 3 if fast else 7
    n_periods = 5 if fast else 7
    taus = taus or (DEFAULT_TAUS[::3] if fast else DEFAULT_TAUS)

    trace = generate_b2w_trace(train_days + eval_days, seed=seed)
    period = trace.slots_per_day
    train = trace.values[: train_days * period]

    predictor = SPARPredictor(
        period=period, n_periods=n_periods, n_recent=30, max_horizon=max(taus)
    )
    predictor.fit(train)

    eval_start = train_days * period
    mre = {
        tau: rolling_forecast(predictor, trace, tau, eval_start=eval_start).mre_pct
        for tau in taus
    }
    # Figure 5a: one full day of 60-minute-ahead forecasts.
    day = rolling_forecast(
        predictor,
        trace[: eval_start + period],
        max(taus),
        eval_start=eval_start,
    )
    return Fig5Result(
        taus=tuple(taus),
        mre_pct=mre,
        day_forecast=day,
        trace=trace,
        train_days=train_days,
    )
