"""Registry of all reproduction experiments.

Maps every table/figure of the paper to the module that regenerates it,
so the CLI, the benchmarks and EXPERIMENTS.md all share one index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments import (
    ablations,
    ext_fault_tolerance,
    ext_multi_tenant,
    ext_wikipedia_provisioning,
    fig1_load_trace,
    fig2_ideal_capacity,
    fig3_planner_goal,
    fig4_effective_capacity,
    fig5_spar_b2w,
    fig6_spar_wikipedia,
    fig7_saturation,
    fig8_chunk_size,
    fig9_elasticity,
    fig10_latency_cdfs,
    fig11_spike_reaction,
    fig12_cost_capacity,
    fig13_black_friday,
    sec5_model_comparison,
    sec81_uniformity,
    table1_schedule,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible table or figure."""

    experiment_id: str
    title: str
    paper_reference: str
    runner: Callable[..., object]  # run(fast=False) -> result with format_report()


REGISTRY: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec("fig1", "B2W load over three days", "Figure 1",
                       fig1_load_trace.run),
        ExperimentSpec("fig2", "Ideal capacity vs allocated servers", "Figure 2",
                       fig2_ideal_capacity.run),
        ExperimentSpec("fig3", "Planner goal (T=9, 2 -> 4 machines)", "Figure 3",
                       fig3_planner_goal.run),
        ExperimentSpec("fig4", "Effective capacity during migration", "Figure 4",
                       fig4_effective_capacity.run),
        ExperimentSpec("table1", "Migration schedule 3 -> 14", "Table 1",
                       table1_schedule.run),
        ExperimentSpec("fig5", "SPAR predictions for B2W", "Figure 5",
                       fig5_spar_b2w.run),
        ExperimentSpec("fig6", "SPAR predictions for Wikipedia", "Figure 6",
                       fig6_spar_wikipedia.run),
        ExperimentSpec("sec5", "SPAR vs ARMA vs AR", "Section 5 (text)",
                       sec5_model_comparison.run),
        ExperimentSpec("fig7", "Single-machine saturation", "Figure 7",
                       fig7_saturation.run),
        ExperimentSpec("fig8", "Migration chunk-size sweep", "Figure 8",
                       fig8_chunk_size.run),
        ExperimentSpec("sec81", "Partition uniformity", "Section 8.1 (text)",
                       sec81_uniformity.run),
        ExperimentSpec("fig9", "Comparison of elasticity approaches",
                       "Figure 9 + Table 2", fig9_elasticity.run),
        ExperimentSpec("fig10", "Top-1% latency CDFs", "Figure 10",
                       fig10_latency_cdfs.run),
        ExperimentSpec("fig11", "Unexpected-spike reaction (R vs R x 8)",
                       "Figure 11", fig11_spike_reaction.run),
        ExperimentSpec("fig12", "Cost vs insufficient capacity (4.5 months)",
                       "Figure 12", fig12_cost_capacity.run),
        ExperimentSpec("fig13", "Black Friday windows", "Figure 13",
                       fig13_black_friday.run),
        ExperimentSpec("ablations", "Design-choice ablations", "(this repo)",
                       ablations.run),
        ExperimentSpec("ext-wiki", "P-Store on Wikipedia-like workloads",
                       "(this repo)", ext_wikipedia_provisioning.run),
        ExperimentSpec("ext-faults", "Chaos run: P-Store under faults",
                       "(this repo)", ext_fault_tolerance.run),
        ExperimentSpec("ext-tenants",
                       "Multi-tenant consolidation: shared vs dedicated",
                       "(this repo)", ext_multi_tenant.run),
    )
}


def list_experiments() -> List[ExperimentSpec]:
    return list(REGISTRY.values())


def get(experiment_id: str) -> ExperimentSpec:
    spec = REGISTRY.get(experiment_id)
    if spec is not None:
        return spec
    # Descriptive aliases: "fig9-elasticity" resolves to "fig9" — any
    # "<id>-<suffix>" form whose prefix is a registered id and matches
    # exactly one entry.
    matches = [
        known for known in REGISTRY if experiment_id.startswith(known + "-")
    ]
    if len(matches) == 1:
        return REGISTRY[matches[0]]
    known = ", ".join(sorted(REGISTRY))
    raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
