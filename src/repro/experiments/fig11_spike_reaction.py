"""Figure 11: reacting to an unexpected load spike at rate R vs R x 8.

When the load deviates from every prediction (a flash crowd — the paper
uses a day in September 2016 with a large unexpected spike), P-Store's
planner finds no feasible plan and must scale out reactively, choosing
between (Section 4.3.1):

1. keep migrating at the normal rate ``R`` — no extra migration
   overhead, but the cluster stays under-provisioned longer;
2. migrate at ``R x 8`` — reach the needed capacity sooner at the cost
   of migration interference.

Paper numbers (violations at p50/p95/p99): rate ``R`` 16/101/143;
rate ``R x 8`` 22/44/51 — boosting costs a few median violations but
strongly reduces the tail, so the total seconds in violation drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import PaperComparison, comparison_table, format_table
from repro.experiments.fig9_elasticity import BenchmarkSetup, ElasticityRun, build_setup, run_pstore
from repro.workloads.spikes import FlashCrowd, inject_flash_crowd

PAPER_RATE_R = (16, 101, 143)
PAPER_RATE_R8 = (22, 44, 51)


@dataclass
class Fig11Result:
    runs: Dict[str, ElasticityRun]

    def format_report(self) -> str:
        normal = self.runs["rate-R"].report
        boosted = self.runs["rate-Rx8"].report
        total_normal = (
            normal.violations_p50 + normal.violations_p95 + normal.violations_p99
        )
        total_boosted = (
            boosted.violations_p50 + boosted.violations_p95 + boosted.violations_p99
        )
        comparisons = [
            PaperComparison(
                "R x 8 reduces tail (p99) violations", "143 -> 51",
                f"{normal.violations_p99} -> {boosted.violations_p99}",
            ),
            PaperComparison(
                "total violation seconds lower at R x 8", "yes",
                str(total_boosted < total_normal),
            ),
        ]
        rows = [
            ("rate R", normal.violations_p50, normal.violations_p95,
             normal.violations_p99, "/".join(map(str, PAPER_RATE_R))),
            ("rate R x 8", boosted.violations_p50, boosted.violations_p95,
             boosted.violations_p99, "/".join(map(str, PAPER_RATE_R8))),
        ]
        table = format_table(
            ("policy", "p50 viol", "p95 viol", "p99 viol", "paper"), rows
        )
        return (
            comparison_table(comparisons, "Figure 11 — unexpected-spike reaction")
            + "\n\n"
            + table
        )


def _spiked_setup(setup: BenchmarkSetup, seed: int) -> BenchmarkSetup:
    """Inject a flash crowd the predictor cannot have seen."""
    day_seconds = 8640.0  # one compressed day
    # A flash crowd steep enough that no feasible plan can out-scale it:
    # the load doubles within a single planning interval, forcing the
    # Section 4.3.1 fallback where the two policies differ.
    spike = FlashCrowd(
        start_seconds=0.36 * day_seconds,
        ramp_seconds=60.0,
        plateau_seconds=900.0,
        decay_seconds=600.0,
        magnitude=2.2,
    )
    setup.eval_trace = inject_flash_crowd(setup.eval_trace, spike)
    return setup


def run(fast: bool = False, seed: int = 1109) -> Fig11Result:
    """Compare the two spike policies on a flash-crowd day."""
    runs: Dict[str, ElasticityRun] = {}
    for policy, name in (("normal-rate", "rate-R"), ("boost", "rate-Rx8")):
        setup = build_setup(
            eval_days=1,
            train_days=10 if fast else 28,
            seed=seed,
            with_skew=False,
        )
        setup = _spiked_setup(setup, seed)
        runs[name] = run_pstore(setup, spike_policy=policy, name=name)
    return Fig11Result(runs=runs)
