"""Figure 9 and Table 2: comparison of elasticity approaches.

The paper replays 3 days of the B2W workload at 10x speed (7.2 hours of
benchmark time) against four configurations of the 10-node H-Store
cluster:

* (a) static allocation with 10 machines — low latency, idle machines;
* (b) static allocation with 4 machines — cheap but violates the SLA
  daily;
* (c) reactive provisioning (E-Store) — follows the load but pays
  latency spikes at every ramp because it reconfigures at peak capacity;
* (d) P-Store with SPAR — reconfigures ahead of the load.

Table 2 counts SLA violations (seconds with p50/p95/p99 above 500 ms)
and average machines: P-Store causes ~72% fewer 99th-percentile
violations than reactive while using about half the machines of peak
provisioning.

Our substitute testbed is the simulated engine (see DESIGN.md); the
trace magnitude is calibrated so the compressed peak (~2.4k txn/s) fits
the 10-node cluster the way the paper's replayed peak (~2.7k txn/s) did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.controller import PredictiveController, ReactiveController
from repro.core.params import SystemParameters
from repro.engine.simulator import EngineConfig, EngineSimulator, RunResult, SkewEvent
from repro.experiments.common import PaperComparison, comparison_table, format_table
from repro.metrics.sla import SLAReport, sla_report
from repro.prediction.spar import SPARPredictor
from repro.workloads.b2w import B2WTraceConfig, generate_b2w_trace
from repro.workloads.trace import LoadTrace

#: Paper Table 2 (violations p50/p95/p99, avg machines).
PAPER_TABLE2 = {
    "static-10": (0, 13, 25, 10.0),
    "static-4": (0, 157, 249, 4.0),
    "reactive": (35, 220, 327, 4.02),
    "pstore": (0, 37, 92, 5.05),
}

#: Replay speedup (Section 7).
SPEEDUP = 10
#: Planning interval in compressed seconds (10 original minutes).
PLAN_SECONDS = 60.0
#: Peak load per original minute, calibrated to the 10-node testbed.
TRACE_PEAK_PER_MINUTE = 14500.0


@dataclass
class BenchmarkSetup:
    """Everything a Figure 9/11 run needs."""

    eval_trace: LoadTrace          # compressed measurement trace (6 s slots)
    train_aggregated: np.ndarray   # planner-granularity training counts
    plan_params: SystemParameters  # interval_seconds = PLAN_SECONDS
    predictor: SPARPredictor
    engine_config: EngineConfig
    skew_events: List[SkewEvent]


def build_setup(
    *,
    eval_days: int = 3,
    train_days: int = 28,
    seed: int = 929,
    with_skew: bool = True,
) -> BenchmarkSetup:
    """Generate the trace, train SPAR and configure the engine."""
    config = B2WTraceConfig(
        num_days=train_days + eval_days,
        peak_per_minute=TRACE_PEAK_PER_MINUTE,
        seed=seed,
    )
    compressed = generate_b2w_trace(config=config).time_compressed(SPEEDUP)
    slots_per_day = int(round(86400 / SPEEDUP / compressed.slot_seconds))
    eval_trace = compressed[train_days * slots_per_day :]

    plan_trace = compressed.resample(PLAN_SECONDS)
    intervals_per_day = int(round(86400 / SPEEDUP / PLAN_SECONDS))
    train_aggregated = plan_trace.values[: train_days * intervals_per_day]

    plan_params = SystemParameters(interval_seconds=PLAN_SECONDS, partitions_per_node=6)
    predictor = SPARPredictor(
        period=intervals_per_day,
        n_periods=min(7, train_days - 1),
        n_recent=6,
        max_horizon=40,
    )
    predictor.fit(train_aggregated)

    engine_config = EngineConfig(dt_seconds=1.0, max_nodes=10)
    skew_events: List[SkewEvent] = []
    if with_skew:
        # Transient workload skew like the blips in Figure 9a: one hot
        # partition for a couple of minutes, once per day around peak.
        day = 86400 / SPEEDUP
        rng = np.random.default_rng(seed + 1)
        for d in range(eval_days):
            start = d * day + (14.0 + rng.uniform(0, 6.0)) * 3600 / SPEEDUP
            skew_events.append(
                SkewEvent(
                    start_seconds=start,
                    end_seconds=start + 20.0,
                    partition_index=int(rng.integers(0, 6)),
                    factor=2.2,
                )
            )
    return BenchmarkSetup(
        eval_trace=eval_trace,
        train_aggregated=train_aggregated,
        plan_params=plan_params,
        predictor=predictor,
        engine_config=engine_config,
        skew_events=skew_events,
    )


@dataclass
class ElasticityRun:
    name: str
    result: RunResult
    report: SLAReport
    moves: int


@dataclass
class Fig9Result:
    runs: Dict[str, ElasticityRun]

    def table2(self) -> str:
        rows = []
        for name, run in self.runs.items():
            paper = PAPER_TABLE2.get(name)
            rows.append(
                (
                    name,
                    run.report.violations_p50,
                    run.report.violations_p95,
                    run.report.violations_p99,
                    f"{run.report.average_machines:.2f}",
                    "/".join(map(str, paper[:3])) if paper else "-",
                    f"{paper[3]:.2f}" if paper else "-",
                )
            )
        return format_table(
            ("approach", "p50 viol", "p95 viol", "p99 viol", "avg mach",
             "paper viol", "paper mach"),
            rows,
            title="Table 2 — SLA violations and machines allocated",
        )

    def format_report(self) -> str:
        reactive = self.runs["reactive"].report
        pstore = self.runs["pstore"].report
        static10 = self.runs["static-10"].report
        reduction = (
            100.0 * (1.0 - pstore.violations_p99 / reactive.violations_p99)
            if reactive.violations_p99
            else float("nan")
        )
        comparisons = [
            PaperComparison(
                "P-Store p99 violations vs reactive", "~72% fewer",
                f"{reduction:.0f}% fewer",
            ),
            PaperComparison(
                "P-Store machines vs static-10", "~50%",
                f"{100.0 * pstore.average_machines / static10.average_machines:.0f}%",
            ),
            PaperComparison(
                "reactive worst of the elastic approaches", "yes",
                str(
                    reactive.violations_p99
                    >= max(pstore.violations_p99, static10.violations_p99)
                ),
            ),
        ]
        return (
            comparison_table(comparisons, "Figure 9 — elasticity comparison")
            + "\n\n"
            + self.table2()
        )


def _finish(name: str, result: RunResult, moves: int) -> ElasticityRun:
    report = sla_report(
        name,
        result.p50_ms,
        result.p95_ms,
        result.p99_ms,
        result.machines,
        dt_seconds=result.dt_seconds,
    )
    return ElasticityRun(name=name, result=result, report=report, moves=moves)


def run_static(setup: BenchmarkSetup, machines: int) -> ElasticityRun:
    sim = EngineSimulator(setup.engine_config, initial_nodes=machines)
    sim.skew_events = list(setup.skew_events)
    result = sim.run(setup.eval_trace)
    return _finish(f"static-{machines}", result, 0)


def run_reactive(setup: BenchmarkSetup) -> ElasticityRun:
    params = setup.plan_params
    first_rate = float(setup.eval_trace.per_second()[0])
    initial = max(1, min(10, int(np.ceil(first_rate / params.q))))
    sim = EngineSimulator(setup.engine_config, initial_nodes=initial)
    sim.skew_events = list(setup.skew_events)
    controller = ReactiveController(
        params,
        max_machines=setup.engine_config.max_nodes,
        trigger_fraction=1.10,
        detect_slots=15,
        scale_in_slots=150,
        measurement_slot_seconds=setup.eval_trace.slot_seconds,
    )
    result = sim.run(setup.eval_trace, controller=controller)
    return _finish("reactive", result, controller.moves_requested)


def run_pstore(
    setup: BenchmarkSetup,
    *,
    spike_policy: str = "normal-rate",
    name: str = "pstore",
) -> ElasticityRun:
    params = setup.plan_params
    first_rate = float(setup.eval_trace.per_second()[0])
    initial = max(1, min(10, int(np.ceil(first_rate * 1.15 / params.q))))
    sim = EngineSimulator(setup.engine_config, initial_nodes=initial)
    sim.skew_events = list(setup.skew_events)
    controller = PredictiveController(
        params,
        setup.predictor,
        training_history=setup.train_aggregated,
        measurement_slot_seconds=setup.eval_trace.slot_seconds,
        max_machines=setup.engine_config.max_nodes,
        spike_policy=spike_policy,
    )
    result = sim.run(setup.eval_trace, controller=controller)
    return _finish(name, result, controller.moves_requested)


def run(fast: bool = False, seed: int = 929) -> Fig9Result:
    """Run all four approaches over the (compressed) 3-day benchmark."""
    setup = build_setup(
        eval_days=1 if fast else 3,
        train_days=10 if fast else 28,
        seed=seed,
    )
    runs: Dict[str, ElasticityRun] = {}
    runs["static-10"] = run_static(setup, 10)
    runs["static-4"] = run_static(setup, 4)
    runs["reactive"] = run_reactive(setup)
    runs["pstore"] = run_pstore(setup)
    return Fig9Result(runs=runs)
