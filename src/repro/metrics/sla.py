"""SLA-violation accounting (Table 2's metric).

The paper counts, per elasticity approach, "the total number of seconds
during the experiment in which the 50th, 95th, or 99th percentile latency
exceeds 500 ms, since that is the maximum delay that is unnoticeable by
users".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: The paper's SLA threshold in milliseconds.
DEFAULT_SLA_MS = 500.0


def violation_seconds(
    latency_ms: Sequence[float],
    threshold_ms: float = DEFAULT_SLA_MS,
    dt_seconds: float = 1.0,
) -> int:
    """Seconds during which the latency series exceeded the threshold."""
    if dt_seconds <= 0:
        raise ConfigurationError("dt_seconds must be positive")
    arr = np.asarray(latency_ms, dtype=np.float64)
    return int(round(float(np.sum(arr > threshold_ms)) * dt_seconds))


@dataclass(frozen=True)
class SLAReport:
    """Violations per percentile plus the resource bill (one Table 2 row)."""

    name: str
    violations_p50: int
    violations_p95: int
    violations_p99: int
    average_machines: float

    def as_row(self) -> str:
        return (
            f"{self.name:<28} {self.violations_p50:>6} {self.violations_p95:>6} "
            f"{self.violations_p99:>6} {self.average_machines:>8.2f}"
        )


def sla_report(
    name: str,
    p50_ms: Sequence[float],
    p95_ms: Sequence[float],
    p99_ms: Sequence[float],
    machines: Sequence[float],
    *,
    threshold_ms: float = DEFAULT_SLA_MS,
    dt_seconds: float = 1.0,
) -> SLAReport:
    """Build one Table 2 row from per-step series."""
    return SLAReport(
        name=name,
        violations_p50=violation_seconds(p50_ms, threshold_ms, dt_seconds),
        violations_p95=violation_seconds(p95_ms, threshold_ms, dt_seconds),
        violations_p99=violation_seconds(p99_ms, threshold_ms, dt_seconds),
        average_machines=float(np.mean(np.asarray(machines, dtype=np.float64))),
    )
