"""Percentile estimation utilities.

The engine's per-step latency records are analytic quantiles, but the
benchmark client and tests also need empirical percentile machinery —
including a streaming estimator (the P² algorithm of Jain & Chlamtac)
that tracks a quantile in O(1) memory, the way a production latency
monitor would.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


def empirical_percentile(values: Sequence[float], percentile: float) -> float:
    """Exact empirical percentile (linear interpolation)."""
    if not 0 <= percentile <= 100:
        raise ConfigurationError("percentile must be within [0, 100]")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot take a percentile of no data")
    return float(np.percentile(arr, percentile))


class P2QuantileEstimator:
    """Streaming quantile estimation via the P² algorithm.

    Maintains five markers whose positions are adjusted with parabolic
    interpolation as observations arrive; memory is O(1) regardless of
    stream length.  Accuracy is typically within a fraction of a percent
    of the exact quantile for smooth distributions.

    Args:
        quantile: Target quantile in (0, 1), e.g. 0.99.
    """

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ConfigurationError("quantile must be in (0, 1)")
        self.quantile = quantile
        self._initial: List[float] = []
        self._count = 0
        # Marker state (initialized after 5 observations).
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: List[float] = []

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    def add(self, value: float) -> None:
        """Observe one value."""
        self._count += 1
        if self._count <= 5:
            self._initial.append(float(value))
            if self._count == 5:
                self._initialize()
            return
        self._update(float(value))

    def _initialize(self) -> None:
        q = self.quantile
        self._heights = sorted(self._initial)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def _update(self, value: float) -> None:
        heights = self._heights
        positions = self._positions
        # Find the cell and clamp extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        # Adjust the three middle markers.
        for i in range(1, 4):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                direction = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _parabolic(self, i: int, direction: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + direction / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + direction)
            * (h[i + 1] - h[i])
            / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - direction)
            * (h[i] - h[i - 1])
            / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, direction: float) -> float:
        h, p = self._heights, self._positions
        j = i + int(direction)
        return h[i] + direction * (h[j] - h[i]) / (p[j] - p[i])

    def value(self) -> float:
        """Current quantile estimate."""
        if self._count == 0:
            raise ConfigurationError("no observations yet")
        if self._count <= 5:
            return empirical_percentile(self._initial, self.quantile * 100.0)
        return self._heights[2]
