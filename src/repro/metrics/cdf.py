"""Empirical CDFs (Figure 10 plots the top-1% latency CDFs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical cumulative distribution.

    ``xs`` is sorted; ``probs[i]`` is the cumulative probability at
    ``xs[i]``.
    """

    xs: np.ndarray
    probs: np.ndarray

    def at(self, threshold: float) -> float:
        """P(X <= threshold)."""
        return float(np.searchsorted(self.xs, threshold, side="right") / len(self.xs))

    def quantile(self, q: float) -> float:
        """Smallest x with CDF(x) >= q."""
        if not 0 < q <= 1:
            raise ConfigurationError("q must be in (0, 1]")
        index = int(np.ceil(q * len(self.xs))) - 1
        return float(self.xs[max(index, 0)])


def empirical_cdf(values: Sequence[float]) -> EmpiricalCDF:
    """Build the empirical CDF of a sample."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ConfigurationError("cannot build a CDF from no data")
    probs = np.arange(1, arr.size + 1) / arr.size
    return EmpiricalCDF(arr, probs)


def top_percent_cdf(values: Sequence[float], percent: float = 1.0) -> EmpiricalCDF:
    """CDF of the worst ``percent``% of a sample (Figure 10's view)."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ConfigurationError("cannot build a CDF from no data")
    count = max(1, int(arr.size * percent / 100.0))
    return empirical_cdf(arr[-count:])
