"""Latency, SLA and distribution metrics."""

from repro.metrics.cdf import EmpiricalCDF, empirical_cdf, top_percent_cdf
from repro.metrics.percentiles import P2QuantileEstimator, empirical_percentile
from repro.metrics.sla import (
    DEFAULT_SLA_MS,
    SLAReport,
    sla_report,
    violation_seconds,
)

__all__ = [
    "DEFAULT_SLA_MS",
    "EmpiricalCDF",
    "P2QuantileEstimator",
    "SLAReport",
    "empirical_cdf",
    "empirical_percentile",
    "sla_report",
    "top_percent_cdf",
    "violation_seconds",
]
