"""Process-parallel sharding of independent experiment runs.

Ablation cells, per-seed fault replays and workload-grid points are
embarrassingly parallel: each builds its own strategy/simulator state
from pickled inputs and returns a plain result object.  This module
shards such grids across a :class:`~concurrent.futures.ProcessPoolExecutor`
with a deterministic merge — results come back in submission order, so
``parallel_map(fn, items, max_workers=w)`` returns exactly what
``[fn(item) for item in items]`` would, for every ``w`` (the contract
tests/test_parallel.py locks in).

Worker semantics (see docs/PERFORMANCE.md):

* ``fn`` and every item must be picklable — use module-level functions
  and plain data/dataclass arguments, never closures or lambdas.
* ``max_workers <= 1`` (or a single item) runs serially in-process:
  no pool, no pickling, identical results.  This is the default, so
  parallelism is always an explicit opt-in.
* Exceptions propagate: the first failing item raises in the parent
  (in item order, matching the serial loop) and cancels the pool.
* Worker *death* (OOM kill, segfault, interpreter abort) poisons the
  whole pool with an uninformative ``BrokenProcessPool``; the map
  retries the work once serially in-process, which either succeeds
  (the death was environmental) or converts the poison into a
  :class:`~repro.errors.ParallelExecutionError` naming the failing cell.
* Determinism is the *caller's* job per item: workers must not share
  mutable state or draw from a global RNG.  Seed each item explicitly —
  :func:`spawn_seeds` derives independent, reproducible child seeds.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.errors import ParallelExecutionError

T = TypeVar("T")
R = TypeVar("R")


def cpu_workers(cap: Optional[int] = None) -> int:
    """A sensible worker count: all cores but one, optionally capped."""
    workers = max(1, (os.cpu_count() or 1) - 1)
    if cap is not None:
        workers = min(workers, cap)
    return workers


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    max_workers: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Args:
        fn: Module-level callable applied to each item.
        items: The work grid; materialized up front.
        max_workers: Process count.  ``None`` or ``<= 1`` runs serially.

    Returns:
        ``[fn(item) for item in items]`` — same values, same order,
        regardless of worker count.
    """
    work = list(items)
    if max_workers is None or max_workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=min(max_workers, len(work))) as pool:
            futures = [pool.submit(fn, item) for item in work]
            try:
                # Collect in submission order, which makes the merge
                # deterministic and re-raises the first failure in order.
                return [future.result() for future in futures]
            except BrokenProcessPool:
                raise
            except Exception:
                for future in futures:
                    future.cancel()
                raise
    except BrokenProcessPool:
        pass
    # A worker died (OOM kill, segfault): every future is poisoned with
    # the same unhelpful error.  Retry serially in-process — either the
    # death was environmental and the results are fine, or the bad cell
    # fails again here with its real traceback and a name.
    results: List[R] = []
    for index, item in enumerate(work):
        try:
            results.append(fn(item))
        except Exception as exc:
            raise ParallelExecutionError(
                f"worker pool died and cell {index} ({item!r}) failed the "
                f"in-process retry too: {exc}"
            ) from exc
    return results


def spawn_seeds(seed: int, n: int) -> List[int]:
    """``n`` independent, reproducible child seeds derived from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children
    are statistically independent of each other *and* of ``seed`` used
    directly — sharding a sweep over workers never reuses streams.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    return [int(child.generate_state(1)[0]) for child in np.random.SeedSequence(seed).spawn(n)]


def shard_indices(n_items: int, n_shards: int) -> List[Sequence[int]]:
    """Split ``range(n_items)`` into at most ``n_shards`` contiguous
    shards of near-equal size (first shards get the remainder)."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    n_shards = min(n_shards, max(n_items, 1))
    base, extra = divmod(n_items, n_shards)
    shards: List[Sequence[int]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(range(start, start + size))
        start += size
    return shards
