"""Plain-text visualization helpers.

The reproduction runs in terminal-only environments, so examples and
reports render time series as ASCII: block-character sparklines, bar
charts and dual-series (load vs capacity) strips.  No plotting
dependencies required.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Eight block characters from low to high.
_BLOCKS = "▁▂▃▄▅▆▇█"


def _as_array(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("need a non-empty 1-D series")
    return arr


def _bucketize(values: np.ndarray, width: int) -> np.ndarray:
    """Downsample to ``width`` points by averaging equal chunks."""
    if values.size <= width:
        return values
    edges = np.linspace(0, values.size, width + 1).astype(int)
    return np.array(
        [values[a:b].mean() if b > a else values[a] for a, b in zip(edges, edges[1:])]
    )


def sparkline(
    values: Sequence[float],
    width: int = 72,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """One-line block-character sparkline of a series.

    Args:
        values: The series.
        width: Maximum characters (longer series are averaged down).
        lo, hi: Optional fixed scale bounds (default: data min/max).
    """
    arr = _bucketize(_as_array(values), width)
    low = arr.min() if lo is None else lo
    high = arr.max() if hi is None else hi
    if high <= low:
        return _BLOCKS[0] * len(arr)
    scaled = np.clip((arr - low) / (high - low), 0.0, 1.0)
    indices = np.minimum((scaled * len(_BLOCKS)).astype(int), len(_BLOCKS) - 1)
    return "".join(_BLOCKS[i] for i in indices)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    arr = _as_array(values)
    if len(labels) != len(arr):
        raise ConfigurationError("labels must align with values")
    peak = arr.max()
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, arr):
        bar = "#" * (int(width * value / peak) if peak > 0 else 0)
        lines.append(f"{label:<{label_width}}  {value:>10.1f}{unit}  {bar}")
    return "\n".join(lines)


def load_vs_capacity_strip(
    load: Sequence[float],
    capacity: Sequence[float],
    width: int = 72,
) -> str:
    """Two aligned sparklines on one scale plus a violation marker row.

    The marker row puts ``!`` wherever the (bucketized) load exceeds the
    capacity — a textual Figure 13.
    """
    load_arr = _as_array(load)
    cap_arr = _as_array(capacity)
    if load_arr.size != cap_arr.size:
        raise ConfigurationError("load and capacity must align")
    lo = 0.0
    hi = float(max(load_arr.max(), cap_arr.max()))
    load_b = _bucketize(load_arr, width)
    cap_b = _bucketize(cap_arr, width)
    markers = "".join(
        "!" if l > c else " " for l, c in zip(load_b, cap_b)
    )
    return (
        f"capacity  {sparkline(cap_b, width, lo, hi)}\n"
        f"load      {sparkline(load_b, width, lo, hi)}\n"
        f"violation {markers}"
    )


def timeline(
    machines: Sequence[float],
    width: int = 72,
    symbol_per: int = 1,
) -> str:
    """Machine-count timeline rendered as digits (10 prints as ``X``)."""
    arr = _bucketize(_as_array(machines), width)
    chars = []
    for value in np.round(arr).astype(int):
        if value >= 10:
            chars.append("X")
        else:
            chars.append(str(max(value, 0)))
    return "".join(chars)
