"""repro.faults — deterministic fault injection for chaos experiments.

See :mod:`repro.faults.plan` for the fault model and
:mod:`repro.faults.injector` for the run-time cursor + stats ledger.
``docs/ROBUSTNESS.md`` documents recovery semantics end to end.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    MigrationStall,
    NodeCrash,
    NodeStraggler,
    TransferFailure,
    parse_fault_spec,
)
from repro.faults.runtime import (
    default_fault_plan,
    fault_plan_session,
    new_default_injector,
    set_default_fault_plan,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "MigrationStall",
    "NodeCrash",
    "NodeStraggler",
    "TransferFailure",
    "default_fault_plan",
    "fault_plan_session",
    "new_default_injector",
    "parse_fault_spec",
    "set_default_fault_plan",
]
