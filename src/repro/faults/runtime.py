"""Process-wide default fault plan (the ``--faults`` CLI hook).

Experiments construct their own :class:`~repro.engine.simulator.
EngineSimulator` instances internally, so a CLI flag cannot thread a
fault plan through every ``run()`` signature.  Instead the CLI installs
a default plan here; every simulator created without an explicit
injector picks it up (each gets its *own* fresh
:class:`~repro.faults.injector.FaultInjector`, so parallel runs in one
experiment do not share cursors).

With no default installed (the normal case) this module is inert and
simulators run fault-free.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

_default_plan: Optional[FaultPlan] = None


def set_default_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or clear, with ``None``) the process-wide fault plan."""
    global _default_plan
    _default_plan = plan if plan else None


def default_fault_plan() -> Optional[FaultPlan]:
    return _default_plan


def new_default_injector() -> Optional[FaultInjector]:
    """A fresh injector over the default plan, or ``None`` if unset."""
    if _default_plan is None:
        return None
    return FaultInjector(_default_plan)


@contextmanager
def fault_plan_session(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Scoped default-plan install; the *previous* default is restored on
    exit (not clobbered to ``None``), so back-to-back CLI invocations in
    one process compose deterministically."""
    global _default_plan
    previous = _default_plan
    _default_plan = plan if plan else None
    try:
        yield plan
    finally:
        _default_plan = previous
