"""The fault injector: a deterministic cursor over a :class:`FaultPlan`.

The engine simulator owns the cluster and the in-flight migration, so
the injector does not mutate anything itself — it tells the simulator
*what is due now* (fault events, straggler expirations, scheduled node
recoveries) and keeps the :class:`FaultStats` ledger the chaos
experiment asserts against.  One injector drives exactly one run; create
a fresh one (same plan) to replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import FaultInjectionError
from repro.faults.plan import FaultEvent, FaultPlan


@dataclass
class FaultStats:
    """Per-fault counters for one run; all monotone, all assertable.

    ``injected`` counters track what the injector delivered; ``skipped``
    counters track migration-targeted events that found no migration in
    flight (a fault plan is written against wall-clock time, not against
    the controller's move timing, so this is expected and must be
    visible rather than silently folded into "injected").
    """

    crashes_injected: int = 0
    crashes_skipped: int = 0          # node already failed / never existed
    nodes_recovered: int = 0
    stragglers_injected: int = 0
    stragglers_recovered: int = 0
    transfer_failures_injected: int = 0
    transfer_failures_skipped: int = 0  # no migration in flight
    transfer_retries: int = 0
    transfers_failed_permanently: int = 0
    stalls_injected: int = 0
    stalls_skipped: int = 0             # no migration in flight
    stalls_recovered: int = 0
    migrations_aborted: int = 0
    buckets_rerouted: int = 0

    def injected_total(self) -> int:
        return (
            self.crashes_injected
            + self.stragglers_injected
            + self.transfer_failures_injected
            + self.stalls_injected
        )

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def format_lines(self) -> List[str]:
        return [f"{name:32s} {value}" for name, value in self.as_dict().items()]


@dataclass
class _Straggler:
    node_id: int
    factor: float
    end_seconds: float


class FaultInjector:
    """Single-use cursor over a fault plan, with the run's stats ledger."""

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise FaultInjectionError("FaultInjector needs a FaultPlan")
        self.plan = plan
        self.stats = FaultStats()
        self._pending: List[FaultEvent] = list(plan.events)  # time-sorted
        self._cursor = 0
        self._recoveries: List[Tuple[float, int]] = []  # (at_seconds, node)
        self._stragglers: List[_Straggler] = []
        #: Telemetry handle installed by the owning simulator; ``None``
        #: (the default) makes every instrumentation site below inert.
        self.telemetry = None

    # ------------------------------------------------------------------
    # Schedule queries (all relative to simulation time ``now``)
    # ------------------------------------------------------------------
    def events_due(self, now: float) -> List[FaultEvent]:
        """Pop and return all plan events with ``at_seconds <= now``."""
        due: List[FaultEvent] = []
        while self._cursor < len(self._pending):
            event = self._pending[self._cursor]
            if event.at_seconds > now:
                break
            due.append(event)
            self._cursor += 1
        if due and self.telemetry is not None:
            self.telemetry.counter("faults.events_delivered").inc(len(due))
        return due

    def schedule_recovery(self, node_id: int, at_seconds: float) -> None:
        self._recoveries.append((at_seconds, node_id))
        self._recoveries.sort()

    def recoveries_due(self, now: float) -> List[int]:
        """Pop node ids whose scheduled recovery time has arrived."""
        due = [node for at, node in self._recoveries if at <= now]
        if due:
            self._recoveries = [(at, n) for at, n in self._recoveries if at > now]
            if self.telemetry is not None:
                self.telemetry.counter("faults.recoveries_delivered").inc(len(due))
        return due

    def add_straggler(self, node_id: int, factor: float, end_seconds: float) -> None:
        self._stragglers.append(_Straggler(node_id, factor, end_seconds))

    def straggler_expirations(self, now: float) -> List[int]:
        """Pop node ids whose straggler window has closed."""
        done = [s.node_id for s in self._stragglers if s.end_seconds <= now]
        if done:
            self._stragglers = [s for s in self._stragglers if s.end_seconds > now]
            if self.telemetry is not None:
                self.telemetry.counter("faults.stragglers_expired").inc(len(done))
        return done

    def active_stragglers(self) -> List[Tuple[int, float]]:
        """(node_id, factor) for every straggler window currently open."""
        return [(s.node_id, s.factor) for s in self._stragglers]

    @property
    def exhausted(self) -> bool:
        """True once nothing (events, recoveries, expirations) remains."""
        return (
            self._cursor >= len(self._pending)
            and not self._recoveries
            and not self._stragglers
        )

    def quiet_over(self, start: float, last: float) -> bool:
        """True when nothing fires in ``(start, last]`` — the engine's
        steady-slot fast path is only safe over such windows."""
        if self._cursor < len(self._pending):
            at = self._pending[self._cursor].at_seconds
            if start < at <= last:
                return False
        for at, _ in self._recoveries:
            if start < at <= last:
                return False
        for s in self._stragglers:
            if start < s.end_seconds <= last:
                return False
        return True
