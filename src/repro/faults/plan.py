"""Deterministic fault plans for chaos experiments.

A :class:`FaultPlan` is an immutable, time-ordered schedule of
infrastructure faults to inject into an engine run:

* **node crash** — a machine disappears; its buckets are emergency
  re-routed to the survivors; it may come back later as a spare;
* **straggler** — a machine's service capacity degrades by a factor for
  a window (a slow disk, a noisy neighbour);
* **transfer failure** — the chunk a Squall transfer is shipping is
  lost and must be retried (with capped exponential backoff);
* **migration stall** — an in-flight transfer stops making progress for
  a window before being re-enqueued.

Plans are either written explicitly, parsed from a compact CLI spec
(:func:`parse_fault_spec`), or generated from a seeded numpy
``Generator`` (:meth:`FaultPlan.generate`) so any chaos run is exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FaultInjectionError


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something bad happens ``at_seconds`` into the run."""

    at_seconds: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.at_seconds) or self.at_seconds < 0:
            raise FaultInjectionError(
                f"fault time must be finite and >= 0, got {self.at_seconds}"
            )


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Node ``node_id`` fails; optionally recovers (as an empty spare)
    ``recover_after_seconds`` later."""

    node_id: int = 0
    recover_after_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node_id < 0:
            raise FaultInjectionError("node_id must be >= 0")
        if self.recover_after_seconds is not None and self.recover_after_seconds <= 0:
            raise FaultInjectionError("recover_after_seconds must be > 0")


@dataclass(frozen=True)
class NodeStraggler(FaultEvent):
    """Node ``node_id`` serves at ``factor`` of its capacity for
    ``duration_seconds``."""

    node_id: int = 0
    factor: float = 0.5
    duration_seconds: float = 60.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node_id < 0:
            raise FaultInjectionError("node_id must be >= 0")
        if not 0 < self.factor < 1:
            raise FaultInjectionError("straggler factor must be in (0, 1)")
        if self.duration_seconds <= 0:
            raise FaultInjectionError("duration_seconds must be > 0")


@dataclass(frozen=True)
class TransferFailure(FaultEvent):
    """The in-flight migration loses ``count`` consecutive chunks.

    Each lost chunk is retried after a capped exponential backoff; a
    streak longer than ``MigrationConfig.max_retries`` fails the
    migration permanently.  A no-op if no migration is in flight.
    """

    count: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.count < 1:
            raise FaultInjectionError("count must be >= 1")


@dataclass(frozen=True)
class MigrationStall(FaultEvent):
    """The in-flight migration makes no progress for ``duration_seconds``
    before its transfers are re-enqueued.  A no-op if none is in flight."""

    duration_seconds: float = 30.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_seconds <= 0:
            raise FaultInjectionError("duration_seconds must be > 0")


class FaultPlan:
    """An immutable, time-sorted sequence of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.at_seconds)
        )

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls(())

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.events)!r})"

    def counts(self) -> dict:
        """Events per kind — the reference the chaos report asserts
        :class:`~repro.faults.injector.FaultStats` against."""
        out = {"crashes": 0, "stragglers": 0, "transfer_failures": 0, "stalls": 0}
        for event in self.events:
            if isinstance(event, NodeCrash):
                out["crashes"] += 1
            elif isinstance(event, NodeStraggler):
                out["stragglers"] += 1
            elif isinstance(event, TransferFailure):
                out["transfer_failures"] += 1
            elif isinstance(event, MigrationStall):
                out["stalls"] += 1
        return out

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        duration_seconds: float,
        *,
        num_nodes: int = 10,
        crashes: int = 1,
        stragglers: int = 1,
        transfer_failures: int = 2,
        stalls: int = 1,
        crash_recovery_seconds: Optional[float] = 600.0,
        straggler_factor: float = 0.5,
        straggler_seconds: float = 120.0,
        stall_seconds: float = 30.0,
    ) -> "FaultPlan":
        """A reproducible random plan from a seeded numpy ``Generator``.

        Fault times are drawn uniformly over the middle 80% of the run
        (so warm-up and tail are clean); crashed/straggling node ids are
        drawn from ``[0, num_nodes)``.  The same seed always yields the
        same plan.
        """
        if duration_seconds <= 0:
            raise FaultInjectionError("duration_seconds must be > 0")
        if num_nodes < 2:
            raise FaultInjectionError("need >= 2 nodes to crash one safely")
        rng = np.random.default_rng(seed)
        lo, hi = 0.1 * duration_seconds, 0.9 * duration_seconds

        def times(n: int) -> List[float]:
            return sorted(float(t) for t in rng.uniform(lo, hi, size=n))

        events: List[FaultEvent] = []
        for t in times(crashes):
            events.append(
                NodeCrash(
                    at_seconds=t,
                    node_id=int(rng.integers(0, num_nodes)),
                    recover_after_seconds=crash_recovery_seconds,
                )
            )
        for t in times(stragglers):
            events.append(
                NodeStraggler(
                    at_seconds=t,
                    node_id=int(rng.integers(0, num_nodes)),
                    factor=straggler_factor,
                    duration_seconds=straggler_seconds,
                )
            )
        for t in times(transfer_failures):
            events.append(TransferFailure(at_seconds=t))
        for t in times(stalls):
            events.append(MigrationStall(at_seconds=t, duration_seconds=stall_seconds))
        return cls(events)


def _split_fields(entry: str) -> Tuple[str, float, List[str]]:
    """``kind@T:opt:opt`` -> (kind, T, [opt, ...])."""
    head, _, rest = entry.partition(":")
    if "@" not in head:
        raise FaultInjectionError(
            f"bad fault entry {entry!r}: expected kind@seconds[:options]"
        )
    kind, _, at = head.partition("@")
    try:
        at_seconds = float(at)
    except ValueError:
        raise FaultInjectionError(f"bad fault time {at!r} in {entry!r}") from None
    options = [f for f in rest.split(":") if f] if rest else []
    return kind.strip().lower(), at_seconds, options


def _opt_value(options: Sequence[str], key: str) -> Optional[str]:
    for opt in options:
        if opt.startswith(key + "="):
            return opt[len(key) + 1 :]
    return None


def _parse_int(value: str, what: str, entry: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise FaultInjectionError(
            f"bad {what} {value!r} in fault entry {entry!r} (expected an integer)"
        ) from None


def _parse_float(value: str, what: str, entry: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise FaultInjectionError(
            f"bad {what} {value!r} in fault entry {entry!r} (expected a number)"
        ) from None


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse the compact ``--faults`` CLI syntax into a plan.

    Comma-separated entries, each ``kind@seconds[:options]``:

    * ``crash@T:nN[:recover=D]`` — crash node ``N`` at ``T`` s, recover
      ``D`` s later;
    * ``straggle@T:nN[:x=F][:for=D]`` — node ``N`` at capacity factor
      ``F`` (default 0.5) for ``D`` s (default 60);
    * ``xfail@T[:count=K]`` — ``K`` consecutive chunk failures;
    * ``stall@T[:for=D]`` — migration stalled for ``D`` s (default 30);
    * ``gen@0:seed=S:span=SECONDS[...]`` — a whole generated plan
      (optional ``crashes=``, ``stragglers=``, ``xfails=``, ``stalls=``).

    Example: ``crash@1200:n3:recover=600,straggle@2000:n1:x=0.4:for=90``.
    """
    events: List[FaultEvent] = []
    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            continue
        kind, at_seconds, options = _split_fields(entry)
        if kind == "crash":
            node = _opt_value(options, "n") or next(
                (o[1:] for o in options if o.startswith("n") and "=" not in o), None
            )
            if node is None:
                raise FaultInjectionError(f"crash entry {entry!r} needs a node (nN)")
            recover = _opt_value(options, "recover")
            events.append(
                NodeCrash(
                    at_seconds=at_seconds,
                    node_id=_parse_int(node, "node id", entry),
                    recover_after_seconds=(
                        _parse_float(recover, "recover delay", entry)
                        if recover
                        else None
                    ),
                )
            )
        elif kind in ("straggle", "straggler"):
            node = next(
                (o[1:] for o in options if o.startswith("n") and "=" not in o), None
            )
            if node is None:
                raise FaultInjectionError(
                    f"straggler entry {entry!r} needs a node (nN)"
                )
            factor = _opt_value(options, "x")
            duration = _opt_value(options, "for")
            events.append(
                NodeStraggler(
                    at_seconds=at_seconds,
                    node_id=_parse_int(node, "node id", entry),
                    factor=(
                        _parse_float(factor, "capacity factor", entry)
                        if factor
                        else 0.5
                    ),
                    duration_seconds=(
                        _parse_float(duration, "duration", entry) if duration else 60.0
                    ),
                )
            )
        elif kind == "xfail":
            count = _opt_value(options, "count")
            events.append(
                TransferFailure(
                    at_seconds=at_seconds,
                    count=_parse_int(count, "count", entry) if count else 1,
                )
            )
        elif kind == "stall":
            duration = _opt_value(options, "for")
            events.append(
                MigrationStall(
                    at_seconds=at_seconds,
                    duration_seconds=(
                        _parse_float(duration, "duration", entry) if duration else 30.0
                    ),
                )
            )
        elif kind == "gen":
            seed = _opt_value(options, "seed")
            span = _opt_value(options, "span")
            if seed is None or span is None:
                raise FaultInjectionError(
                    f"gen entry {entry!r} needs seed= and span="
                )
            kwargs = {}
            for name, key in (
                ("crashes", "crashes"),
                ("stragglers", "stragglers"),
                ("transfer_failures", "xfails"),
                ("stalls", "stalls"),
                ("num_nodes", "nodes"),
            ):
                value = _opt_value(options, key)
                if value is not None:
                    kwargs[name] = _parse_int(value, key, entry)
            events.extend(
                FaultPlan.generate(
                    _parse_int(seed, "seed", entry),
                    _parse_float(span, "span", entry),
                    **kwargs,
                ).events
            )
        else:
            raise FaultInjectionError(
                f"unknown fault kind {kind!r} in {entry!r}; known: "
                "crash, straggle, xfail, stall, gen"
            )
    return FaultPlan(events)
