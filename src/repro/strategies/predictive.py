"""P-Store's predictive allocation strategy (the paper's contribution).

Each interval with no move in flight, the strategy:

1. obtains load predictions for the next ``horizon`` intervals (SPAR by
   default; the oracle variant reads the true future),
2. inflates them by a safety factor (15% in the paper),
3. runs the dynamic-programming planner (Algorithms 1-3), and
4. executes only the *first* move of the optimal plan if that move must
   start now — receding-horizon control (Section 6).  Later moves are
   re-planned once fresher predictions exist.

Scale-in moves require three consecutive planning cycles to agree
(Section 6's confirmation heuristic) so noise cannot trigger churn.  If
no feasible plan exists (an unpredicted spike), the strategy falls back
to reactive scale-out to the needed size (Section 4.3.1).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.policy import PredictivePolicy
from repro.prediction.base import Predictor
from repro.prediction.oracle import OraclePredictor
from repro.prediction.spar import SPARPredictor
from repro.strategies.base import AllocationStrategy, SimState
from repro.workloads.trace import LoadTrace


class PStoreStrategy(AllocationStrategy):
    """Predictive provisioning via the DP planner.

    Args:
        predictor: Fitted load predictor (slot units must match the
            simulation trace).  Pass an :class:`OraclePredictor` for the
            "P-Store Oracle" upper bound.
        horizon: Forecast window in intervals (must cover ``2D/P``;
            Section 5's discussion).
        inflation: Prediction inflation factor (paper: 0.15).
        scale_in_confirmations: Consecutive agreeing cycles required
            before a scale-in executes (paper: 3).
    """

    def __init__(
        self,
        predictor: Predictor,
        horizon: int = 12,
        inflation: float = 0.15,
        scale_in_confirmations: int = 3,
        training_prefix: Optional[np.ndarray] = None,
        name: Optional[str] = None,
    ) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if inflation < 0:
            raise ValueError("inflation must be >= 0")
        self.predictor = predictor
        self.horizon = horizon
        self.inflation = inflation
        self.scale_in_confirmations = scale_in_confirmations
        self.training_prefix = (
            np.asarray(training_prefix, dtype=np.float64)
            if training_prefix is not None
            else None
        )
        self.name = name or (
            "pstore-oracle" if isinstance(predictor, OraclePredictor) else "pstore-spar"
        )
        self._policy: Optional[PredictivePolicy] = None
        self._prediction_matrix: Optional[np.ndarray] = None

    @property
    def plans_computed(self) -> int:
        return self._policy.plans_computed if self._policy else 0

    @property
    def fallback_scale_outs(self) -> int:
        return self._policy.fallback_scale_outs if self._policy else 0

    # ------------------------------------------------------------------
    def reset(self, params, max_machines, trace: Optional[LoadTrace] = None) -> None:
        super().reset(params, max_machines, trace)
        self._policy = PredictivePolicy(
            params, max_machines, self.scale_in_confirmations
        )
        self._prediction_matrix = None
        if trace is not None:
            self._precompute(trace)

    def _precompute(self, trace: LoadTrace) -> None:
        """Precompute the prediction matrix for a known evaluation trace.

        ``matrix[t, h-1]`` is the forecast of slot ``t + h`` issued at
        slot ``t``.  For SPAR this is exactly the online forecast (each
        design row only uses values at or before its origin), just
        computed in one vectorized pass; for the oracle it is the truth.
        """
        n = len(trace)
        matrix = np.full((n, self.horizon), np.nan)
        if isinstance(self.predictor, OraclePredictor):
            values = trace.values
            for h in range(1, self.horizon + 1):
                matrix[: n - h, h - 1] = values[h:]
                matrix[n - h :, h - 1] = values[-1]
        elif isinstance(self.predictor, SPARPredictor):
            prefix_len = 0
            series = trace.values
            if self.training_prefix is not None:
                prefix_len = len(self.training_prefix)
                series = np.concatenate([self.training_prefix, trace.values])
            for h in range(1, self.horizon + 1):
                targets, preds = self.predictor.batch_predict(series, h)
                origins = targets - h - prefix_len
                mask = (origins >= 0) & (origins < n)
                matrix[origins[mask], h - 1] = preds[mask]
        else:
            return  # fall back to per-interval predict() calls
        self._prediction_matrix = matrix

    # ------------------------------------------------------------------
    def _forecast(self, state: SimState) -> Optional[np.ndarray]:
        """Predicted load (per-slot counts) for the next horizon slots."""
        if self._prediction_matrix is not None:
            row = self._prediction_matrix[state.interval]
            if np.any(np.isnan(row)):
                return None
            return row
        history_counts = state.history_rates[: state.interval + 1] * state.slot_seconds
        if self.training_prefix is not None:
            history_counts = np.concatenate([self.training_prefix, history_counts])
        if len(history_counts) < self.predictor.min_history:
            return None
        return self.predictor.predict(history_counts, self.horizon)

    def decide(self, state: SimState) -> Optional[int]:
        assert self._policy is not None, "reset() must run before decide()"
        forecast_counts = self._forecast(state)
        if forecast_counts is None:
            # No usable prediction yet (model warm-up): degrade to the
            # reactive control law so the cluster is never left stranded.
            needed = max(
                1,
                math.ceil(state.load_rate * (1.0 + self.inflation) / self.params.q),
            )
            if needed > state.machines:
                target = self.clamp(needed)
                self.note_decision(state, target, "warmup-reactive")
                return target
            return None
        forecast_rates = forecast_counts / state.slot_seconds
        load = np.empty(self.horizon + 1)
        load[0] = state.load_rate
        load[1:] = forecast_rates * (1.0 + self.inflation)
        decision = self._policy.decide(load, state.machines)
        if decision.target is not None and decision.target != state.machines:
            self.note_decision(
                state,
                decision.target,
                "fallback" if decision.fallback else "planned",
            )
        return decision.target
