"""The "Simple" day/night strategy of Figure 12/13.

Scale out every morning, scale in every night, to fixed machine counts.
It looks workable on a regular week (Figure 13 left) but breaks down as
soon as the load deviates from the pattern — Black Friday crushes it
(Figure 13 right), and buying safety by raising the day count "vastly
increases the cost".
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.strategies.base import AllocationStrategy, SimState
from repro.workloads.trace import SECONDS_PER_DAY


class SimpleStrategy(AllocationStrategy):
    """Fixed day/night machine counts switched at fixed hours.

    Args:
        day_machines: Machines between ``morning_hour`` and ``night_hour``.
        night_machines: Machines otherwise.
        morning_hour: Hour of day to scale out (default 07:00 — ahead of
            the daily ramp).
        night_hour: Hour of day to scale in (default 23:00).
    """

    def __init__(
        self,
        day_machines: int,
        night_machines: int,
        morning_hour: float = 7.0,
        night_hour: float = 23.0,
    ) -> None:
        if day_machines < night_machines:
            raise ConfigurationError("day_machines must be >= night_machines")
        if night_machines < 1:
            raise ConfigurationError("night_machines must be >= 1")
        if not 0 <= morning_hour < night_hour <= 24:
            raise ConfigurationError("need 0 <= morning_hour < night_hour <= 24")
        self.day_machines = day_machines
        self.night_machines = night_machines
        self.morning_hour = morning_hour
        self.night_hour = night_hour
        self.name = f"simple-{day_machines}/{night_machines}"

    def _target(self, state: SimState) -> int:
        seconds_into_day = (state.interval * state.slot_seconds) % SECONDS_PER_DAY
        hour = seconds_into_day / 3600.0
        if self.morning_hour <= hour < self.night_hour:
            return self.day_machines
        return self.night_machines

    def initial_machines(self, first_load_rate: float) -> int:
        return min(self.night_machines, self.max_machines)

    def decide(self, state: SimState) -> Optional[int]:
        target = self.clamp(self._target(state))
        return target if target != state.machines else None
