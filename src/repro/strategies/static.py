"""Static allocation: a fixed cluster size, never reconfigured.

The paper's baseline (Figures 9a/9b): provisioning for peak load wastes
machines at night; provisioning below peak violates the SLA daily.  Both
are inflexible against load surges like Black Friday (Figure 13).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.strategies.base import AllocationStrategy, SimState


class StaticStrategy(AllocationStrategy):
    """Always run exactly ``machines`` servers."""

    def __init__(self, machines: int) -> None:
        if machines < 1:
            raise ConfigurationError("machines must be >= 1")
        self.machines = machines
        self.name = f"static-{machines}"

    def initial_machines(self, first_load_rate: float) -> int:
        return min(self.machines, self.max_machines)

    def decide(self, state: SimState) -> Optional[int]:
        return None
