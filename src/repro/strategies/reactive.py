"""Reactive provisioning, E-Store style (Sections 2 and 8.2).

E-Store monitors utilization and reconfigures only after detecting that
the system is (nearly) overloaded — which means every daily ramp starts a
migration exactly when there is no headroom left, producing the latency
spikes of Figure 9c.  The strategy below reproduces that control law at
the capacity-simulation level:

* **scale out** as soon as the measured load exceeds the scale-out
  threshold of the current allocation (after a short detection delay,
  standing in for E-Store's monitoring window);
* **scale in** when the load has stayed comfortably below the target of
  a smaller allocation for a sustained period.

The ``headroom`` knob adds a buffer of extra machines; sweeping it traces
the reactive capacity-cost curve of Figure 12.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError
from repro.strategies.base import AllocationStrategy, SimState


class ReactiveStrategy(AllocationStrategy):
    """Threshold-triggered reactive elasticity.

    Args:
        headroom: Fraction of extra capacity to provision beyond the
            measured load (0.0 = allocate exactly ceil(load / Q)).
            Sweeping this knob traces the reactive cost/violation curve.
        trigger_fraction: Scale out once load exceeds this fraction of
            the current allocation's *target* capacity (Q-based).  The
            default 1.0 is genuinely reactive: reconfiguration starts
            only after performance is already degrading — the weakness
            Section 1 identifies in all reactive techniques.
        detect_intervals: Consecutive intervals the trigger must hold
            (the monitoring delay before E-Store reacts).
        scale_in_intervals: Consecutive intervals of low load required
            before scaling in.
    """

    def __init__(
        self,
        headroom: float = 0.0,
        trigger_fraction: float = 1.0,
        detect_intervals: int = 2,
        scale_in_intervals: int = 12,
    ) -> None:
        if headroom < 0:
            raise ConfigurationError("headroom must be >= 0")
        if not 0 < trigger_fraction <= 1.5:
            raise ConfigurationError("trigger_fraction must be in (0, 1.5]")
        if detect_intervals < 1 or scale_in_intervals < 1:
            raise ConfigurationError("detection windows must be >= 1 interval")
        self.headroom = headroom
        self.trigger_fraction = trigger_fraction
        self.detect_intervals = detect_intervals
        self.scale_in_intervals = scale_in_intervals
        self.name = f"reactive-h{headroom:.2f}"
        self._over_count = 0
        self._under_count = 0
        self._last_machines: Optional[int] = None

    def reset(self, params, max_machines, trace=None) -> None:  # noqa: D102
        super().reset(params, max_machines, trace)
        self._over_count = 0
        self._under_count = 0
        self._last_machines = None

    def _needed(self, load_rate: float) -> int:
        """Machines for the load plus the configured headroom."""
        return self.clamp(
            max(1, math.ceil(load_rate * (1.0 + self.headroom) / self.params.q))
        )

    def decide(self, state: SimState) -> Optional[int]:
        params = self.params
        if self._last_machines is not None and state.machines != self._last_machines:
            # The allocation changed since our last decision returned —
            # a move we requested completing, or a *forced* change (a
            # fault-driven re-route).  Consecutive-interval counts
            # measured against the old allocation are stale; detection
            # must restart against the new one.
            self._over_count = 0
            self._under_count = 0
        self._last_machines = state.machines
        target_capacity = params.q * state.machines
        needed = self._needed(state.load_rate)

        if state.load_rate > self.trigger_fraction * target_capacity:
            self._over_count += 1
            self._under_count = 0
            if self._over_count >= self.detect_intervals and needed > state.machines:
                self._over_count = 0
                self._last_machines = needed
                self.note_decision(state, needed, "reactive-out")
                return needed
            return None
        self._over_count = 0

        if needed < state.machines:
            self._under_count += 1
            if self._under_count >= self.scale_in_intervals:
                self._under_count = 0
                # Scale in one step at a time: reactive systems avoid
                # large speculative shrinks they might instantly regret.
                self._last_machines = state.machines - 1
                self.note_decision(state, state.machines - 1, "reactive-in")
                return state.machines - 1
        else:
            self._under_count = 0
        return None
