"""Allocation strategies compared in the paper's evaluation.

Static, Simple (day/night), Reactive (E-Store-style) and P-Store
(predictive, SPAR or oracle) — the five curves of Figure 12.
"""

from repro.strategies.base import AllocationStrategy, SimState
from repro.strategies.manual import ManualOverrideStrategy, ProvisioningWindow
from repro.strategies.predictive import PStoreStrategy
from repro.strategies.reactive import ReactiveStrategy
from repro.strategies.simple import SimpleStrategy
from repro.strategies.static import StaticStrategy

__all__ = [
    "AllocationStrategy",
    "ManualOverrideStrategy",
    "PStoreStrategy",
    "ProvisioningWindow",
    "ReactiveStrategy",
    "SimState",
    "SimpleStrategy",
    "StaticStrategy",
]
