"""Allocation-strategy interface for the capacity simulator.

A strategy decides, at every interval where no reconfiguration is in
flight, how many machines the cluster should have.  The capacity
simulator (:mod:`repro.simulation.capacity_sim`) charges the cost of the
moves the strategy requests and checks the load against the *effective*
capacity while they run — the Section 8.3 methodology behind Figures 12
and 13.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.params import SystemParameters
from repro.workloads.trace import LoadTrace


@dataclass
class SimState:
    """What a strategy may look at when deciding.

    Attributes:
        interval: Current interval index ``t``.
        machines: Machines the cluster currently targets (no move in
            flight when ``decide`` is called).
        load_rate: Measured load of the current interval, txn/s.
        history_rates: Measured load of intervals ``0..t`` (txn/s view);
            strategies must not peek past ``t`` (the oracle predictor is
            the only sanctioned exception, by design).
        slot_seconds: Interval length.
    """

    interval: int
    machines: int
    load_rate: float
    history_rates: np.ndarray
    slot_seconds: float


class AllocationStrategy(ABC):
    """Decides target machine counts over time."""

    name: str = "strategy"

    def reset(
        self,
        params: SystemParameters,
        max_machines: int,
        trace: Optional[LoadTrace] = None,
    ) -> None:
        """Prepare for a run.  ``trace`` is provided so predictive
        strategies can pre-train / precompute; non-oracle strategies must
        only use it in ways equivalent to online observation."""
        self.params = params
        self.max_machines = max_machines

    def initial_machines(self, first_load_rate: float) -> int:
        """Machines allocated at t = 0 (default: enough for the load)."""
        return min(self.params.machines_for_load(first_load_rate), self.max_machines)

    @abstractmethod
    def decide(self, state: SimState) -> Optional[int]:
        """Target machine count, or ``None`` to keep the current size."""

    def clamp(self, machines: int) -> int:
        return max(1, min(machines, self.max_machines))

    def note_decision(self, state: SimState, target: int, kind: str) -> None:
        """Record an allocation decision on the active telemetry (no-op
        when none is installed).  Strategies call this as they commit to
        a target, so capacity-simulation runs produce the same
        ``decision`` event stream as engine runs."""
        from repro.telemetry.runtime import active_telemetry

        tel = active_telemetry()
        if tel is not None:
            tel.counter("strategy.decisions").inc()
            tel.event(
                "decision",
                state.interval * state.slot_seconds,
                action=kind,
                strategy=self.name,
                machines_before=state.machines,
                target=target,
            )
