"""Manual provisioning overlays (the third leg of the composite vision).

Section 1 of the paper envisions elastic provisioning as a composite of
(i) predictive provisioning, (ii) reactive provisioning for unpredictable
spikes, and (iii) **manual provisioning "for rare one-off, but expected,
load spikes (e.g. special promotions)"** — noting that the evaluation
shows it is "not strictly necessary, but may still be used as an extra
precaution for rare, important events" like Black Friday.

:class:`ManualOverrideStrategy` implements that overlay: it wraps any
base strategy and enforces operator-scheduled machine-count floors over
calendar windows, deferring to the base strategy everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.strategies.base import AllocationStrategy, SimState
from repro.workloads.trace import SECONDS_PER_DAY


@dataclass(frozen=True)
class ProvisioningWindow:
    """An operator-scheduled capacity floor.

    Attributes:
        start_day: First day (inclusive, fractional days allowed) of the
            window, measured from the start of the simulated trace.
        end_day: End of the window (exclusive).
        min_machines: Machines the cluster must not drop below while the
            window is active.
        label: Operator-facing note (e.g. "Black Friday").
    """

    start_day: float
    end_day: float
    min_machines: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.end_day <= self.start_day:
            raise ConfigurationError("end_day must be after start_day")
        if self.min_machines < 1:
            raise ConfigurationError("min_machines must be >= 1")

    def active(self, day: float) -> bool:
        return self.start_day <= day < self.end_day


class ManualOverrideStrategy(AllocationStrategy):
    """A base strategy plus operator-scheduled capacity floors.

    Inside an active window the effective target is
    ``max(base_decision, min_machines)``; approaching windows are
    pre-provisioned one move ahead so the floor is in place when the
    window opens (the whole point of manual provisioning is being early).

    Args:
        base: The strategy to wrap (typically P-Store).
        windows: Scheduled floors, e.g. Black Friday.
        lead_days: How far ahead of a window to start enforcing its
            floor (default 0.05 day ≈ 72 minutes, comfortably more than
            any single move).
    """

    def __init__(
        self,
        base: AllocationStrategy,
        windows: Sequence[ProvisioningWindow],
        lead_days: float = 0.05,
    ) -> None:
        if lead_days < 0:
            raise ConfigurationError("lead_days must be >= 0")
        self.base = base
        self.windows: List[ProvisioningWindow] = list(windows)
        self.lead_days = lead_days
        self.name = f"{getattr(base, 'name', 'base')}+manual"
        self.overrides_applied = 0

    # ------------------------------------------------------------------
    def reset(self, params, max_machines, trace=None) -> None:
        super().reset(params, max_machines, trace)
        self.base.reset(params, max_machines, trace)
        self.overrides_applied = 0

    def initial_machines(self, first_load_rate: float) -> int:
        floor = self._floor_at(0.0)
        return self.clamp(max(self.base.initial_machines(first_load_rate), floor))

    def _floor_at(self, day: float) -> int:
        floor = 0
        for window in self.windows:
            if window.active(day) or window.active(day + self.lead_days):
                floor = max(floor, window.min_machines)
        return floor

    def decide(self, state: SimState) -> Optional[int]:
        day = state.interval * state.slot_seconds / SECONDS_PER_DAY
        floor = self._floor_at(day)
        base_target = self.base.decide(state)

        effective = base_target if base_target is not None else state.machines
        if floor and effective < floor:
            self.overrides_applied += 1
            target = self.clamp(floor)
            return target if target != state.machines else None
        return base_target
