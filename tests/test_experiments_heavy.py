"""Shape tests for the heavy evaluation experiments (fast variants).

These run the Figure 9-13 pipelines at reduced scale and assert the
paper's headline orderings.  They are the slowest tests in the suite
(tens of seconds each); the benchmarks run the full-scale versions.
"""

import pytest

from repro.experiments import (
    fig9_elasticity,
    fig10_latency_cdfs,
    fig11_spike_reaction,
    fig12_cost_capacity,
    fig13_black_friday,
    sec5_model_comparison,
)


@pytest.fixture(scope="module")
def fig9_result():
    return fig9_elasticity.run(fast=True)


class TestFig9Table2:
    def test_reactive_worst_elastic_approach(self, fig9_result):
        runs = fig9_result.runs
        assert (
            runs["reactive"].report.violations_p99
            > runs["pstore"].report.violations_p99
        )

    def test_pstore_halves_machines(self, fig9_result):
        runs = fig9_result.runs
        ratio = (
            runs["pstore"].report.average_machines
            / runs["static-10"].report.average_machines
        )
        assert 0.35 < ratio < 0.70  # paper: ~50%

    def test_static4_violates_heavily(self, fig9_result):
        runs = fig9_result.runs
        assert (
            runs["static-4"].report.violations_p99
            > 10 * runs["static-10"].report.violations_p99
        )

    def test_elastic_approaches_actually_move(self, fig9_result):
        assert fig9_result.runs["reactive"].moves > 0
        assert fig9_result.runs["pstore"].moves > 0

    def test_report_renders(self, fig9_result):
        text = fig9_result.format_report()
        assert "Table 2" in text and "pstore" in text


class TestFig10:
    def test_cdf_orderings(self, fig9_result):
        result = fig10_latency_cdfs.run(fig9=fig9_result)
        # Static-10 is the best at the tail; reactive worse than P-Store.
        assert result.median_of_top1("static-10", "p99") <= result.median_of_top1(
            "pstore", "p99"
        )
        assert result.median_of_top1("reactive", "p99") >= result.median_of_top1(
            "pstore", "p99"
        )
        assert "Figure 10" in result.format_report()


class TestFig11:
    def test_boost_reduces_tail_violations(self):
        result = fig11_spike_reaction.run(fast=True)
        normal = result.runs["rate-R"].report
        boosted = result.runs["rate-Rx8"].report
        assert boosted.violations_p99 < normal.violations_p99
        total_normal = (
            normal.violations_p50 + normal.violations_p95 + normal.violations_p99
        )
        total_boosted = (
            boosted.violations_p50 + boosted.violations_p95 + boosted.violations_p99
        )
        assert total_boosted < total_normal


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_cost_capacity.run(fast=True)

    def test_oracle_bounds_spar(self, result):
        for q in (0.65,):
            spar = next(
                p for p in result.points
                if p.strategy == "pstore-spar" and p.parameter == q
            )
            oracle = next(
                p for p in result.points
                if p.strategy == "pstore-oracle" and p.parameter == q
            )
            assert oracle.pct_time_insufficient <= spar.pct_time_insufficient + 0.05

    def test_q_sweep_trades_cost_for_capacity(self, result):
        spar_points = sorted(
            (p for p in result.points if p.strategy == "pstore-spar"),
            key=lambda p: p.parameter,
        )
        costs = [p.cost for p in spar_points]
        assert costs == sorted(costs, reverse=True)  # higher Q -> cheaper

    def test_reactive_dominated_by_pstore(self, result):
        spar = result.default_point("pstore-spar")
        reactive = result.default_point("reactive")
        # At comparable cost, reactive violates more.
        assert reactive.pct_time_insufficient > spar.pct_time_insufficient
        assert reactive.cost < 1.2 * spar.cost

    def test_static_extremes(self, result):
        statics = {p.parameter: p for p in result.points if p.strategy == "static"}
        assert statics[4].pct_time_insufficient > 10.0
        assert statics[12].pct_time_insufficient < 1.0
        assert statics[12].cost > 2.0 * statics[4].cost


class TestFig13:
    def test_black_friday_story(self):
        result = fig13_black_friday.run(fast=True)
        regular = {
            n: result.window_stats(n, result.regular_window) for n in result.results
        }
        friday = {
            n: result.window_stats(n, result.black_friday_window)
            for n in result.results
        }
        # Simple looks fine on a regular window but breaks on the surge.
        assert regular["simple"].pct_time_insufficient < 3.0
        assert (
            friday["simple"].pct_time_insufficient
            > regular["simple"].pct_time_insufficient
        )
        # P-Store (predictive + reactive fallback) handles Black Friday.
        assert friday["pstore-spar"].pct_time_insufficient <= 0.5
        # Static cannot absorb the surge.
        assert friday["static"].pct_time_insufficient > 0.5


class TestSec5:
    def test_spar_wins(self):
        result = sec5_model_comparison.run(fast=True)
        assert result.mre_pct["spar"] < result.mre_pct["arma"]
        assert result.mre_pct["spar"] < result.mre_pct["ar"]
        assert result.mre_pct["spar"] < result.mre_pct["persistence"]


class TestExtWikipedia:
    def test_pipeline_generalizes(self):
        from repro.experiments import ext_wikipedia_provisioning

        result = ext_wikipedia_provisioning.run(fast=True)
        for language in ("en", "de"):
            by = result.results[language]
            assert by["pstore-spar"].cost < 0.75 * by["static-10"].cost
            assert by["pstore-spar"].pct_time_insufficient < 2.0
        assert (
            result.results["de"]["pstore-spar"].pct_time_insufficient
            >= result.results["en"]["pstore-spar"].pct_time_insufficient
        )
