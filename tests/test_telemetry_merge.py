"""Telemetry merge and streaming-delta edge cases.

The live fleet view must equal the end-of-run capture merge *exactly*
(same floats, same ordering), so these tests pin the corner cases the
distributed suite's end-to-end runs would only hit by luck: gauge
relabel collisions, histograms observed into disjoint buckets, repeated
delta application, and list-level equality between the two merge paths.
"""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import Telemetry
from repro.telemetry.merge import (
    DELTA_FORMAT,
    DeltaAccumulator,
    TelemetryDeltaTracker,
    build_fleet_view,
    copy_telemetry_into,
    merge_snapshot,
    snapshot_telemetry,
)


def worker_telemetry(seed, observations):
    tel = Telemetry()
    tel.counter("serve.admitted").inc(10.0 * seed)
    tel.gauge("serve.machines").set(float(seed))
    hist = tel.histogram("serve.latency_ms")
    for value in observations:
        hist.observe(value)
    tel.event("scale", t=1.0 * seed, machines=seed)
    return tel


class TestMergeSnapshot:
    def test_counters_add_and_gauges_relabel(self):
        edge = Telemetry()
        edge.counter("serve.admitted").inc(5.0)
        for worker in (0, 1):
            tel = worker_telemetry(worker + 1, [10.0])
            merge_snapshot(edge, snapshot_telemetry(tel), worker=worker)
        assert edge.metrics.counter("serve.admitted").value == 5.0 + 10.0 + 20.0
        gauges = edge.metrics.gauges()
        assert gauges['serve.machines{worker="0"}'].value == 1.0
        assert gauges['serve.machines{worker="1"}'].value == 2.0
        assert "serve.machines" not in gauges

    def test_gauge_relabel_collision_is_last_write_wins(self):
        """Two snapshots from the *same* worker id collide on the
        relabelled name; the later one must win like any gauge set."""
        edge = Telemetry()
        first = Telemetry()
        first.gauge("serve.machines").set(3.0)
        second = Telemetry()
        second.gauge("serve.machines").set(7.0)
        second.gauge("serve.machines").set(8.0)
        merge_snapshot(edge, snapshot_telemetry(first), worker=0)
        merge_snapshot(edge, snapshot_telemetry(second), worker=0)
        gauge = edge.metrics.gauges()['serve.machines{worker="0"}']
        assert gauge.value == 8.0
        # Update counts accumulate honestly across both merges.
        assert gauge.updates == 3

    def test_worker_labeled_gauge_keeps_existing_labels(self):
        edge = Telemetry()
        tel = Telemetry()
        tel.gauge('queue.depth{node="2"}').set(4.0)
        merge_snapshot(edge, snapshot_telemetry(tel), worker=1)
        assert 'queue.depth{node="2",worker="1"}' in edge.metrics.gauges()

    def test_disjoint_histogram_observations_merge_bucketwise(self):
        """Workers that saw entirely different latency regimes still sum
        into one correct fleet histogram."""
        edge = Telemetry()
        fast = Telemetry()
        for _ in range(4):
            fast.histogram("serve.latency_ms").observe(1.5)  # low buckets
        slow = Telemetry()
        for _ in range(3):
            slow.histogram("serve.latency_ms").observe(900.0)  # tail buckets
        merge_snapshot(edge, snapshot_telemetry(fast), worker=0)
        merge_snapshot(edge, snapshot_telemetry(slow), worker=1)
        merged = edge.metrics.histograms()["serve.latency_ms"]
        assert merged.count == 7
        assert merged.total == pytest.approx(4 * 1.5 + 3 * 900.0)
        reference = Telemetry().histogram("serve.latency_ms")
        for _ in range(4):
            reference.observe(1.5)
        for _ in range(3):
            reference.observe(900.0)
        assert merged.counts == reference.counts

    def test_mismatched_histogram_buckets_refuse_to_merge(self):
        edge = Telemetry()
        edge.histogram("serve.latency_ms", buckets=(1.0, 2.0)).observe(0.5)
        tel = Telemetry()
        tel.histogram("serve.latency_ms").observe(0.5)
        with pytest.raises(ConfigurationError, match="bucket layout"):
            merge_snapshot(edge, snapshot_telemetry(tel), worker=0)

    def test_rejects_unknown_snapshot_format(self):
        with pytest.raises(ConfigurationError, match="format"):
            merge_snapshot(Telemetry(), {"format": "bogus/9"}, worker=0)


class TestDeltaTracker:
    def test_delta_ships_only_changed_metrics(self):
        tel = worker_telemetry(1, [10.0])
        tracker = TelemetryDeltaTracker()
        first = tracker.delta(tel)
        assert {c["name"] for c in first["counters"]} == {"serve.admitted"}
        assert len(first["events"]) == 1
        # Nothing changed: the next delta is empty.
        second = tracker.delta(tel)
        assert second["counters"] == []
        assert second["gauges"] == []
        assert second["histograms"] == []
        assert second["events"] == []

    def test_delta_values_are_absolute_not_increments(self):
        tel = Telemetry()
        tracker = TelemetryDeltaTracker()
        tel.counter("jobs").inc(3.0)
        tracker.delta(tel)
        tel.counter("jobs").inc(4.0)
        (record,) = tracker.delta(tel)["counters"]
        assert record["value"] == 7.0  # cumulative, not the +4 increment

    def test_gauge_reship_keyed_on_updates_not_value(self):
        """A gauge set back to its previous value still ships: liveness
        is tracked by the update count, not the float."""
        tel = Telemetry()
        tracker = TelemetryDeltaTracker()
        tel.gauge("machines").set(2.0)
        tracker.delta(tel)
        tel.gauge("machines").set(2.0)  # same value, new write
        delta = tracker.delta(tel)
        assert [g["name"] for g in delta["gauges"]] == ["machines"]


class TestDeltaAccumulator:
    def test_apply_is_idempotent(self):
        tel = worker_telemetry(1, [10.0, 20.0])
        delta = TelemetryDeltaTracker().delta(tel)
        acc = DeltaAccumulator()
        acc.apply(delta)
        once = acc.snapshot()
        acc.apply(delta)  # re-applying the same absolute state
        twice = acc.snapshot()
        assert once["counters"] == twice["counters"]
        assert once["gauges"] == twice["gauges"]
        assert once["histograms"] == twice["histograms"]
        assert acc.deltas_applied == 2
        # Events are append-only and *not* idempotent by design; the
        # edge applies each delta exactly once.
        assert len(twice["events"]) == 2 * len(once["events"]) or not once["events"]

    def test_rejects_unknown_delta_format(self):
        with pytest.raises(ConfigurationError, match=DELTA_FORMAT.split("/")[0]):
            DeltaAccumulator().apply({"format": "bogus/1"})

    def test_accumulated_state_matches_worker_registry(self):
        tel = Telemetry()
        tracker = TelemetryDeltaTracker()
        acc = DeltaAccumulator()
        for step in range(5):
            tel.counter("jobs").inc(1.0 + step)
            tel.histogram("latency_ms").observe(10.0 * (step + 1))
            acc.apply(tracker.delta(tel))
        snapshot = acc.snapshot()
        direct = snapshot_telemetry(tel)
        assert snapshot["counters"] == direct["counters"]
        assert snapshot["gauges"] == direct["gauges"]
        assert snapshot["histograms"] == direct["histograms"]


class TestFleetView:
    def test_delta_merged_equals_capture_merged_exactly(self):
        """The headline invariant: a fleet view rebuilt from streamed
        deltas is list-equal (names, floats, counts) to the end-of-run
        capture merge over full snapshots."""
        edge_own = Telemetry()
        edge_own.counter("serve.offered").inc(100.0)
        edge_own.gauge("edge.queue").set(3.0)

        workers = {
            0: worker_telemetry(1, [10.0, 55.0, 350.0]),
            1: worker_telemetry(2, [2.0, 700.0]),
        }

        # Live path: stream three rounds of deltas per worker.
        trackers = {w: TelemetryDeltaTracker() for w in workers}
        views = {w: DeltaAccumulator() for w in workers}
        for round_index in range(3):
            for w, tel in workers.items():
                tel.counter("serve.admitted").inc(float(round_index))
                tel.histogram("serve.latency_ms").observe(25.0 * (w + 1))
                views[w].apply(trackers[w].delta(tel))
        live = build_fleet_view(edge_own, views)

        # Capture path: one full-snapshot merge at the end.
        capture = Telemetry()
        copy_telemetry_into(capture, edge_own)
        for w, tel in workers.items():
            merge_snapshot(
                capture, snapshot_telemetry(tel), worker=w,
                parts=("metrics", "events"),
            )

        assert live.records() == capture.records()

    def test_copy_telemetry_into_does_not_relabel(self):
        source = Telemetry()
        source.gauge("serve.machines").set(4.0)
        source.event("scale", t=2.0, machines=4)
        target = Telemetry()
        copy_telemetry_into(target, source)
        assert "serve.machines" in target.metrics.gauges()
        (event,) = target.timeline.events
        assert "worker" not in event
