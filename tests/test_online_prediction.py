"""Tests for the online (active-learning) predictor wrapper."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.online import OnlinePredictor
from repro.prediction.spar import SPARPredictor


def spar(period=48):
    return SPARPredictor(period=period, n_periods=2, n_recent=4, max_horizon=6)


def periodic(period, days, level=100.0):
    profile = level + 40.0 * np.sin(2 * np.pi * np.arange(period) / period)
    return np.tile(profile, days)


class TestColdStart:
    def test_predict_before_enough_data_raises(self):
        online = OnlinePredictor(spar(), refit_every=48)
        online.observe_many(np.ones(10))
        assert not online.is_fitted
        with pytest.raises(PredictionError):
            online.predict_from_observed(2)

    def test_fits_as_soon_as_possible(self):
        model = spar()
        online = OnlinePredictor(model, refit_every=10_000)
        series = periodic(48, 4)
        refits = online.observe_many(series)
        assert refits == 1
        assert online.is_fitted
        # Once fitted, forecasts track the periodic signal.
        prediction = online.predict_from_observed(4)
        truth = periodic(48, 5)[len(series) : len(series) + 4]
        assert np.allclose(prediction, truth, rtol=0.02)


class TestRefitCadence:
    def test_refits_every_period(self):
        online = OnlinePredictor(spar(), refit_every=48)
        observed = 4 * 48
        online.observe_many(periodic(48, 4))
        expected = 1 + (observed - online.min_training) // 48
        assert online.refits == expected
        online.observe_many(periodic(48, 2))  # 2 more days -> 2 more refits
        assert online.refits == expected + 2

    def test_refit_adapts_to_level_shift(self):
        online = OnlinePredictor(spar(), refit_every=48)
        online.observe_many(periodic(48, 4, level=100.0))
        before = online.predict_from_observed(1)[0]
        # The workload doubles; after enough refits the model follows.
        online.observe_many(periodic(48, 6, level=200.0))
        after = online.predict_from_observed(1)[0]
        assert after > before * 1.5

    def test_offline_bootstrap(self):
        online = OnlinePredictor(spar(), refit_every=48)
        online.fit(periodic(48, 4))
        assert online.is_fitted
        assert online.refits == 1
        assert len(online.observed()) == 4 * 48

    def test_rejects_bad_cadence(self):
        with pytest.raises(PredictionError):
            OnlinePredictor(spar(), refit_every=0)


class LevelPredictor:
    """Minimal inner model: fits on any non-empty history."""

    min_history = 1
    max_horizon = 8
    min_training_length = 1

    def fit(self, training):
        self.level = float(np.mean(training))
        return self

    def predict(self, history, horizon):
        return np.full(horizon, self.level)


class TestExplicitMinTraining:
    def test_zero_is_honoured_not_treated_as_unset(self):
        online = OnlinePredictor(LevelPredictor(), refit_every=100, min_training=0)
        assert online.min_training == 0
        # With an explicit 0 the very first observation triggers the fit;
        # a falsy-check bug would silently substitute the inner default.
        assert online.observe(5.0)
        assert online.is_fitted
        assert np.allclose(online.predict_from_observed(3), 5.0)

    def test_none_falls_back_to_inner_requirement(self):
        model = spar()
        online = OnlinePredictor(model, min_training=None)
        assert online.min_training == model.min_training_length

    def test_negative_rejected(self):
        with pytest.raises(PredictionError):
            OnlinePredictor(LevelPredictor(), min_training=-1)


class TestDelegation:
    def test_min_history_tracks_inner(self):
        model = spar()
        online = OnlinePredictor(model)
        assert online.min_history == model.min_history

    def test_predict_uses_explicit_history(self):
        online = OnlinePredictor(spar(), refit_every=10_000)
        series = periodic(48, 5)
        online.fit(series[: 4 * 48])
        direct = online.predict(series[: 4 * 48 + 10], 3)
        assert direct.shape == (3,)
