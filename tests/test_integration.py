"""End-to-end integration tests across the whole stack.

These exercise the complete P-Store loop — workload generation, online
measurement, SPAR prediction, DP planning, migration scheduling and the
simulated engine — on small-but-real scenarios.
"""

import numpy as np
import pytest

from repro.core.controller import PredictiveController, ReactiveController
from repro.core.params import SystemParameters
from repro.engine.simulator import EngineConfig, EngineSimulator
from repro.prediction.oracle import OraclePredictor
from repro.prediction.spar import SPARPredictor
from repro.simulation.capacity_sim import CapacitySimulator
from repro.strategies import PStoreStrategy, ReactiveStrategy, StaticStrategy
from repro.workloads.b2w import B2WTraceConfig, generate_b2w_trace

SLOT = 6.0        # compressed measurement slot (1 original minute at 10x)
PLAN = 60.0       # compressed planning interval (10 original minutes)


@pytest.fixture(scope="module")
def compressed_days():
    """5 training days + 1 eval day, compressed 10x, engine-calibrated."""
    config = B2WTraceConfig(num_days=6, peak_per_minute=14000, seed=42)
    return generate_b2w_trace(config=config).time_compressed(10)


class TestPredictiveEndToEnd:
    def test_spar_controller_on_engine(self, compressed_days):
        trace = compressed_days
        period = int(8640 / PLAN)  # compressed day / planning interval
        plan_trace = trace.resample(PLAN)
        train = plan_trace.values[: 5 * period]
        eval_trace = trace[5 * 1440 :]

        params = SystemParameters(interval_seconds=PLAN, partitions_per_node=6)
        spar = SPARPredictor(
            period=period, n_periods=4, n_recent=6, max_horizon=40
        ).fit(train)
        controller = PredictiveController(
            params, spar, training_history=train,
            measurement_slot_seconds=SLOT, max_machines=10,
        )
        first_rate = float(eval_trace.per_second()[0])
        sim = EngineSimulator(
            EngineConfig(max_nodes=10),
            initial_nodes=max(1, int(np.ceil(first_rate * 1.15 / params.q))),
        )
        result = sim.run(eval_trace, controller=controller)

        # The controller actually drove reconfigurations in both
        # directions across the day.
        assert controller.moves_requested >= 6
        assert result.machines.max() >= 7
        assert result.machines.min() <= 3
        # Predictive provisioning keeps the SLA essentially clean.
        assert result.sla_violations("p99") <= 10
        # Machines track the load: average well below peak provisioning.
        assert result.average_machines() < 0.75 * result.machines.max()

    def test_pstore_beats_reactive_on_violations(self, compressed_days):
        trace = compressed_days
        period = int(8640 / PLAN)
        plan_trace = trace.resample(PLAN)
        train = plan_trace.values[: 5 * period]
        eval_trace = trace[5 * 1440 :]
        params = SystemParameters(interval_seconds=PLAN, partitions_per_node=6)

        spar = SPARPredictor(
            period=period, n_periods=4, n_recent=6, max_horizon=40
        ).fit(train)
        first = max(1, int(np.ceil(eval_trace.per_second()[0] / params.q)))

        sim_p = EngineSimulator(EngineConfig(max_nodes=10), initial_nodes=first)
        ctrl_p = PredictiveController(
            params, spar, training_history=train,
            measurement_slot_seconds=SLOT, max_machines=10,
        )
        res_p = sim_p.run(eval_trace, controller=ctrl_p)

        sim_r = EngineSimulator(EngineConfig(max_nodes=10), initial_nodes=first)
        ctrl_r = ReactiveController(
            params, max_machines=10, trigger_fraction=1.1, detect_slots=15,
            scale_in_slots=150, measurement_slot_seconds=SLOT,
        )
        res_r = sim_r.run(eval_trace, controller=ctrl_r)

        assert res_p.sla_violations("p99") < res_r.sla_violations("p99")


class TestCapacitySimEndToEnd:
    def test_strategy_ordering_on_one_week(self):
        slot = 300.0
        per_day = int(86400 / slot)
        trace = generate_b2w_trace(
            12, slot_seconds=slot, seed=7
        ).scaled(6.0)
        train = trace.values[: 8 * per_day]
        eval_trace = trace[8 * per_day :]
        params = SystemParameters(interval_seconds=slot, partitions_per_node=6)
        sim = CapacitySimulator(params, max_machines=20)

        oracle = sim.run(
            eval_trace,
            PStoreStrategy(OraclePredictor(eval_trace.values), horizon=12,
                           name="oracle"),
        )
        static_big = sim.run(eval_trace, StaticStrategy(12))
        static_small = sim.run(eval_trace, StaticStrategy(3))
        reactive = sim.run(eval_trace, ReactiveStrategy())

        # Elastic approaches cost far less than peak provisioning.
        assert oracle.cost < 0.7 * static_big.cost
        # Small static violates massively; the oracle never does more
        # than sub-slot bursts allow.
        assert static_small.pct_time_insufficient > 10.0
        assert oracle.pct_time_insufficient < 1.0
        # Reactive is at least as violation-prone as the oracle.
        assert reactive.pct_time_insufficient >= oracle.pct_time_insufficient


class TestPlannerToMigrationChain:
    def test_plan_drives_engine_migrations(self):
        """Execute a full plan move-by-move against the engine."""
        from repro.core.planner import Planner

        params = SystemParameters(interval_seconds=60.0, partitions_per_node=6)
        planner = Planner(params, max_machines=8)
        q = params.q
        # At 1-minute intervals a 1 -> 2 move takes ~7 intervals, so the
        # ramp must leave the planner room to stage its scale-outs.
        load = np.concatenate([
            np.full(8, 0.8), np.full(5, 1.5), np.full(4, 2.5), np.full(8, 3.5)
        ]) * q
        plan = planner.best_moves(load, initial_machines=1)

        sim = EngineSimulator(
            EngineConfig(max_nodes=8, dt_seconds=1.0), initial_nodes=1
        )
        for move in plan.moves:
            if move.is_noop:
                continue
            migration = sim.start_move(move.after)
            while not migration.completed:
                migration.step(10.0)
            sim.migration = None
        assert sim.machines_allocated == plan.final_machines
        fractions = sim.cluster.data_fractions()
        assert len(fractions) == plan.final_machines
        assert max(fractions.values()) < 1.25 * min(fractions.values())
