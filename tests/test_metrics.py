"""Tests for the metrics package (percentiles, CDFs, SLA accounting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.cdf import empirical_cdf, top_percent_cdf
from repro.metrics.percentiles import P2QuantileEstimator, empirical_percentile
from repro.metrics.sla import sla_report, violation_seconds


class TestEmpiricalPercentile:
    def test_basic(self):
        assert empirical_percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_rejects_empty_and_bad_percentile(self):
        with pytest.raises(ConfigurationError):
            empirical_percentile([], 50)
        with pytest.raises(ConfigurationError):
            empirical_percentile([1.0], 150)


class TestP2Estimator:
    def test_tracks_median_of_uniform(self, rng):
        estimator = P2QuantileEstimator(0.5)
        for value in rng.uniform(0, 100, 20000):
            estimator.add(value)
        assert estimator.value() == pytest.approx(50.0, abs=2.0)

    def test_tracks_p99_of_exponential(self, rng):
        estimator = P2QuantileEstimator(0.99)
        samples = rng.exponential(1.0, 50000)
        for value in samples:
            estimator.add(value)
        exact = np.percentile(samples, 99)
        assert estimator.value() == pytest.approx(exact, rel=0.1)

    def test_small_sample_falls_back_to_exact(self):
        estimator = P2QuantileEstimator(0.5)
        for value in (5.0, 1.0, 3.0):
            estimator.add(value)
        assert estimator.value() == 3.0

    def test_no_data_raises(self):
        with pytest.raises(ConfigurationError):
            P2QuantileEstimator(0.5).value()

    def test_rejects_bad_quantile(self):
        with pytest.raises(ConfigurationError):
            P2QuantileEstimator(0.0)

    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=6, max_size=500),
           st.sampled_from([0.5, 0.9, 0.99]))
    @settings(max_examples=50, deadline=None)
    def test_estimate_within_observed_range(self, values, quantile):
        estimator = P2QuantileEstimator(quantile)
        for value in values:
            estimator.add(value)
        assert min(values) - 1e-9 <= estimator.value() <= max(values) + 1e-9


class TestCDF:
    def test_empirical_cdf(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert list(cdf.xs) == [1.0, 2.0, 3.0]
        assert cdf.at(2.0) == pytest.approx(2 / 3)
        assert cdf.at(0.5) == 0.0
        assert cdf.quantile(1.0) == 3.0
        assert cdf.quantile(0.34) == 2.0

    def test_top_percent(self):
        values = list(range(1, 201))
        top = top_percent_cdf(values, percent=1.0)
        assert len(top.xs) == 2
        assert list(top.xs) == [199.0, 200.0]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf([])
        cdf = empirical_cdf([1.0])
        with pytest.raises(ConfigurationError):
            cdf.quantile(0.0)


class TestSLA:
    def test_violation_seconds(self):
        series = [100, 600, 700, 100, 501]
        assert violation_seconds(series) == 3
        assert violation_seconds(series, threshold_ms=650) == 1
        assert violation_seconds(series, dt_seconds=2.0) == 6

    def test_rejects_bad_dt(self):
        with pytest.raises(ConfigurationError):
            violation_seconds([1.0], dt_seconds=0)

    def test_report_row(self):
        report = sla_report(
            "test", [100, 600], [600, 600], [700, 700], [4, 4]
        )
        assert report.violations_p50 == 1
        assert report.violations_p95 == 2
        assert report.violations_p99 == 2
        assert report.average_machines == 4.0
        assert "test" in report.as_row()
