"""Property-based tests for the planner.

For random feasible instances, the returned plan must always be a
contiguous tiling of the horizon whose effective capacity covers the
load, with cost between the fractional lower bound and the trivial
peak-provisioned upper bound.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro.core.capacity as cap
from repro.core.params import SystemParameters
from repro.core.planner import Planner, plan_cost_lower_bound
from repro.errors import InfeasiblePlanError

PARAMS = SystemParameters(interval_seconds=300.0, partitions_per_node=6)


@st.composite
def planning_instances(draw):
    horizon = draw(st.integers(3, 12))
    initial = draw(st.integers(1, 6))
    # Loads as machine multiples; keep the first interval feasible.
    multiples = draw(
        st.lists(
            st.floats(0.1, 6.0, allow_nan=False, allow_infinity=False),
            min_size=horizon + 1,
            max_size=horizon + 1,
        )
    )
    load = np.array(multiples) * PARAMS.q
    load[0] = min(load[0], 0.95 * initial * PARAMS.q)
    return load, initial


@given(planning_instances())
@settings(max_examples=120, deadline=None)
def test_plans_are_feasible_tilings(instance):
    load, initial = instance
    planner = Planner(PARAMS, max_machines=12)
    try:
        plan = planner.best_moves(load, initial)
    except InfeasiblePlanError:
        return  # random spikes may legitimately be unschedulable

    # Moves tile [0, horizon] contiguously.
    cursor = 0
    for move in plan.moves:
        assert move.start == cursor
        assert move.end > move.start
        assert move.before >= 1 and move.after >= 1
        cursor = move.end
    assert cursor == plan.horizon

    # First move starts from the initial machine count.
    assert plan.moves[0].before == initial
    assert plan.moves[-1].after == plan.final_machines

    # Effective capacity covers the load at every interval.
    for move in plan.moves:
        duration = move.duration
        for i in range(1, duration + 1):
            eff = cap.effective_capacity(move.before, move.after, i / duration, PARAMS)
            assert load[move.start + i] <= eff + 1e-6

    # Chained moves are consistent (after of one == before of next).
    for first, second in zip(plan.moves, plan.moves[1:]):
        assert first.after == second.before


@given(planning_instances())
@settings(max_examples=80, deadline=None)
def test_cost_bounds(instance):
    load, initial = instance
    planner = Planner(PARAMS, max_machines=12)
    try:
        plan = planner.best_moves(load, initial)
    except InfeasiblePlanError:
        return
    horizon = len(load) - 1
    lower = plan_cost_lower_bound(load, PARAMS)
    peak_machines = max(
        initial, max(1, math.ceil(load.max() / PARAMS.q))
    )
    upper = peak_machines * (horizon + 1) + peak_machines  # slack for move avg
    # Just-in-time allocation inside each real move may fractionally
    # undercut the ceil-based baseline by up to (A - B) / 2 machines.
    move_slack = sum(
        abs(m.after - m.before) / 2 for m in plan.moves if not m.is_noop
    )
    assert lower - move_slack - 1e-6 <= plan.cost <= upper + 1e-6


@given(planning_instances())
@settings(max_examples=60, deadline=None)
def test_final_machines_minimal(instance):
    """No feasible plan ends with fewer machines than the one returned."""
    load, initial = instance
    planner = Planner(PARAMS, max_machines=12)
    try:
        plan = planner.best_moves(load, initial)
    except InfeasiblePlanError:
        return
    assume(plan.final_machines > 1)
    with pytest.raises(InfeasiblePlanError):
        planner.best_moves(
            load, initial, required_final_machines=plan.final_machines - 1
        )


@given(st.integers(1, 10), st.integers(3, 10))
@settings(max_examples=40, deadline=None)
def test_constant_load_always_holds(machines, horizon):
    """At exactly-sufficient constant load, the plan is all no-ops."""
    load = np.full(horizon + 1, (machines - 0.5) * PARAMS.q)
    planner = Planner(PARAMS, max_machines=12)
    plan = planner.best_moves(load, machines)
    assert plan.first_real_move() is None
    assert plan.cost == pytest.approx(machines * (horizon + 1))
