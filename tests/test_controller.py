"""Tests for the online Predictive and Reactive controllers (Section 6)."""

import numpy as np
import pytest

from repro.core.controller import (
    PredictiveController,
    ReactiveController,
    SPIKE_POLICY_BOOST,
)
from repro.core.params import SystemParameters
from repro.engine.simulator import EngineConfig, EngineSimulator
from repro.errors import ConfigurationError
from repro.prediction.oracle import OraclePredictor
from repro.workloads.trace import LoadTrace

SLOT = 6.0
PLAN = 60.0


def plan_params() -> SystemParameters:
    return SystemParameters(interval_seconds=PLAN, partitions_per_node=6)


def ramp_trace(minutes: int, start_rate: float, end_rate: float) -> LoadTrace:
    slots = int(minutes * 60 / SLOT)
    rates = np.linspace(start_rate, end_rate, slots)
    return LoadTrace(rates * SLOT, slot_seconds=SLOT)


class TestPredictiveController:
    def test_scales_ahead_of_oracle_ramp(self):
        params = plan_params()
        trace = ramp_trace(90, 200.0, 1800.0)
        plan_counts = trace.resample(PLAN).values
        controller = PredictiveController(
            params,
            OraclePredictor(plan_counts),
            training_history=plan_counts[:1],
            measurement_slot_seconds=SLOT,
            horizon=20,
            max_machines=10,
        )
        sim = EngineSimulator(EngineConfig(max_nodes=10), initial_nodes=1)
        result = sim.run(trace, controller=controller)
        assert controller.moves_requested >= 3
        assert sim.machines_allocated >= 7
        # Predictive scaling keeps latency clean throughout the ramp.
        assert result.sla_violations("p99") == 0
        # Every executed move is recorded in the decision log.
        assert len(controller.decision_log) == controller.moves_requested
        assert all(d.target > d.machines_before for d in controller.decision_log)
        assert "planned" in str(controller.decision_log[-1]) or (
            "warmup" in str(controller.decision_log[-1])
        )

    def test_scales_in_with_confirmations(self):
        params = plan_params()
        trace = ramp_trace(120, 1500.0, 150.0)
        plan_counts = trace.resample(PLAN).values
        controller = PredictiveController(
            params,
            OraclePredictor(plan_counts),
            training_history=plan_counts[:1],
            measurement_slot_seconds=SLOT,
            horizon=20,
            max_machines=10,
            scale_in_confirmations=3,
        )
        sim = EngineSimulator(EngineConfig(max_nodes=10), initial_nodes=6)
        sim.run(trace, controller=controller)
        assert sim.machines_allocated <= 2

    def test_plans_at_interval_granularity(self):
        params = plan_params()
        trace = ramp_trace(10, 200.0, 200.0)
        plan_counts = trace.resample(PLAN).values
        controller = PredictiveController(
            params,
            OraclePredictor(plan_counts),
            training_history=plan_counts[:1],
            measurement_slot_seconds=SLOT,
            horizon=5,
            max_machines=4,
        )
        assert controller.slots_per_interval == 10
        sim = EngineSimulator(EngineConfig(max_nodes=4), initial_nodes=1)
        sim.run(trace, controller=controller)
        # 10 minutes -> 10 closed planning intervals.
        assert len(controller.history) == 1 + 10

    def test_default_horizon_covers_2d_over_p(self):
        params = plan_params()
        controller = PredictiveController(
            params, OraclePredictor(np.ones(10)), measurement_slot_seconds=SLOT
        )
        minimum = 2 * params.d_seconds / params.partitions_per_node
        assert controller.horizon * PLAN >= minimum

    def test_rejects_misaligned_slots(self):
        params = plan_params()
        with pytest.raises(ConfigurationError):
            PredictiveController(
                params, OraclePredictor(np.ones(4)), measurement_slot_seconds=7.0
            )

    def test_rejects_unknown_spike_policy(self):
        with pytest.raises(ConfigurationError):
            PredictiveController(
                plan_params(), OraclePredictor(np.ones(4)), spike_policy="warp"
            )

    def test_boost_used_on_fallback(self):
        params = plan_params()
        # Constant low load, then a cliff the oracle *does* see but that
        # is infeasible to out-scale: predictive policy falls back.
        slots = int(30 * 60 / SLOT)
        rates = np.concatenate([
            np.full(slots // 2, 150.0), np.full(slots - slots // 2, 2500.0)
        ])
        trace = LoadTrace(rates * SLOT, slot_seconds=SLOT)
        plan_counts = trace.resample(PLAN).values
        controller = PredictiveController(
            params,
            OraclePredictor(plan_counts),
            training_history=plan_counts[:1],
            measurement_slot_seconds=SLOT,
            horizon=10,
            max_machines=10,
            spike_policy=SPIKE_POLICY_BOOST,
        )
        sim = EngineSimulator(EngineConfig(max_nodes=10), initial_nodes=1)
        sim.run(trace, controller=controller)
        assert controller.boosted_moves >= 1


class TestReactiveController:
    def test_waits_for_detection_window(self):
        params = plan_params()
        controller = ReactiveController(
            params, max_machines=10, detect_slots=5, measurement_slot_seconds=SLOT
        )
        sim = EngineSimulator(EngineConfig(max_nodes=10), initial_nodes=1)
        overload = LoadTrace(np.full(20, 500.0 * SLOT), slot_seconds=SLOT)
        for slot_index in range(4):
            controller.on_slot(sim, slot_index, 500.0 * SLOT)
        assert controller.moves_requested == 0
        controller.on_slot(sim, 4, 500.0 * SLOT)
        assert controller.moves_requested == 1
        assert sim.migration_active

    def test_no_reaction_below_trigger(self):
        params = plan_params()
        controller = ReactiveController(
            params, max_machines=10, detect_slots=1, measurement_slot_seconds=SLOT
        )
        sim = EngineSimulator(EngineConfig(max_nodes=10), initial_nodes=2)
        for slot_index in range(10):
            controller.on_slot(sim, slot_index, 400.0 * SLOT)  # < 2 * Q
        assert controller.moves_requested == 0

    def test_scale_in_after_sustained_low_load(self):
        params = plan_params()
        controller = ReactiveController(
            params, max_machines=10, scale_in_slots=5, measurement_slot_seconds=SLOT
        )
        config = EngineConfig(max_nodes=10)
        sim = EngineSimulator(config, initial_nodes=4)
        slot_index = 0
        while controller.moves_requested == 0 and slot_index < 50:
            if sim.migration_active:
                sim.migration.step(1e6)
                sim.migration = None
            controller.on_slot(sim, slot_index, 100.0 * SLOT)
            slot_index += 1
        assert controller.moves_requested == 1

    def test_rejects_invalid_windows(self):
        with pytest.raises(ConfigurationError):
            ReactiveController(plan_params(), detect_slots=0)
        with pytest.raises(ConfigurationError):
            ReactiveController(plan_params(), trigger_fraction=0.0)
