"""Tests for the round-based migration scheduler (Section 4.4.1, Table 1)."""

import pytest

import repro.core.capacity as cap
from repro.core.params import SystemParameters
from repro.core.schedule import (
    MoveSchedule,
    Round,
    Transfer,
    build_move_schedule,
    naive_block_round_count,
)
from repro.errors import ConfigurationError


class TestTable1:
    """The paper's 3 -> 14 example."""

    @pytest.fixture
    def schedule(self) -> MoveSchedule:
        return build_move_schedule(3, 14)

    def test_eleven_rounds(self, schedule):
        assert schedule.num_rounds == 11

    def test_phase_structure(self, schedule):
        phases = [rnd.phase for rnd in schedule.rounds]
        assert phases == [1] * 6 + [2] * 2 + [3] * 3

    def test_naive_needs_twelve(self):
        assert naive_block_round_count(3, 14) == 12

    def test_first_round_matches_paper(self, schedule):
        # Table 1, phase 1 step 1 first round: 1->4, 2->5, 3->6 (1-based).
        first = {(t.sender, t.receiver) for t in schedule.rounds[0].transfers}
        assert first == {(0, 3), (1, 4), (2, 5)}

    def test_every_pair_exactly_once(self, schedule):
        pairs = [(t.sender, t.receiver) for t in schedule.all_transfers()]
        assert len(pairs) == 3 * 11
        assert len(set(pairs)) == len(pairs)

    def test_allocation_curve(self, schedule):
        allocations = [rnd.machines_allocated for rnd in schedule.rounds]
        assert allocations == [6, 6, 6, 9, 9, 9, 12, 12, 14, 14, 14]

    def test_average_machines_matches_algorithm4(self, schedule):
        assert schedule.average_machines_allocated() == pytest.approx(
            cap.average_machines_allocated(3, 14)
        )

    def test_senders_fully_utilized(self, schedule):
        # Every round keeps all 3 senders busy (the point of phase 3).
        for rnd in schedule.rounds:
            assert len(rnd.transfers) == 3

    def test_as_table_mentions_phases(self, schedule):
        text = schedule.as_table()
        assert "Phase 1" in text and "Phase 3" in text
        assert "1 → 4" in text


class TestCases:
    def test_noop(self):
        schedule = build_move_schedule(5, 5)
        assert schedule.is_noop
        assert schedule.num_rounds == 0
        assert schedule.average_machines_allocated() == 5.0

    def test_case1_small_scale_out(self):
        # 3 -> 5: delta=2 <= 3 senders; 3 rounds of 2 parallel transfers.
        schedule = build_move_schedule(3, 5)
        assert schedule.num_rounds == 3
        for rnd in schedule.rounds:
            assert len(rnd.transfers) == 2
            assert rnd.machines_allocated == 5

    def test_case2_block_multiple(self):
        # 3 -> 9: delta=6=2x3 -> 6 rounds, blocks allocated just in time.
        schedule = build_move_schedule(3, 9)
        assert schedule.num_rounds == 6
        allocations = [rnd.machines_allocated for rnd in schedule.rounds]
        assert allocations == [6, 6, 6, 9, 9, 9]

    def test_single_machine_growth(self):
        schedule = build_move_schedule(1, 2)
        assert schedule.num_rounds == 1
        assert schedule.rounds[0].transfers == (Transfer(0, 1),)

    def test_scale_in_mirrors_scale_out(self):
        out = build_move_schedule(3, 14)
        into = build_move_schedule(14, 3)
        assert into.num_rounds == out.num_rounds
        # Allocation curve is the time reverse.
        assert [r.machines_allocated for r in into.rounds] == list(
            reversed([r.machines_allocated for r in out.rounds])
        )
        # Transfers are role-swapped: survivors receive from departing.
        for rnd in into.rounds:
            for transfer in rnd.transfers:
                assert transfer.receiver < 3
                assert 3 <= transfer.sender < 14

    def test_validation_passes_broad_grid(self):
        for before in range(1, 11):
            for after in range(1, 11):
                if before != after:
                    build_move_schedule(before, after).validate()

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            build_move_schedule(0, 3)
        with pytest.raises(ConfigurationError):
            build_move_schedule(3, 5, partitions_per_node=0)


class TestTiming:
    def test_total_matches_equation3(self, single_partition_params):
        for before, after in ((3, 5), (3, 9), (3, 14), (14, 3), (2, 7), (1, 2)):
            schedule = build_move_schedule(before, after, 1)
            assert schedule.total_seconds(single_partition_params) == pytest.approx(
                cap.move_time_seconds(before, after, single_partition_params)
            )

    def test_partitions_speed_up_rounds(self):
        p1 = SystemParameters(partitions_per_node=1)
        p6 = SystemParameters(partitions_per_node=6)
        s1 = build_move_schedule(3, 9, 1)
        s6 = build_move_schedule(3, 9, 6)
        assert s6.num_rounds == s1.num_rounds
        assert s6.total_seconds(p6) == pytest.approx(s1.total_seconds(p1) / 6)

    def test_fraction_completed_linear(self):
        schedule = build_move_schedule(3, 14)
        fractions = [
            schedule.fraction_completed_after(i) for i in range(schedule.num_rounds)
        ]
        assert fractions[0] == pytest.approx(1 / 11)
        assert fractions[-1] == pytest.approx(1.0)
        diffs = {round(b - a, 9) for a, b in zip(fractions, fractions[1:])}
        assert len(diffs) == 1  # equal data per round


class TestValidateCatchesCorruption:
    def test_duplicate_transfer_rejected(self):
        schedule = build_move_schedule(2, 4)
        first = schedule.rounds[0]
        schedule.rounds[0] = Round(
            first.index,
            first.transfers + (first.transfers[0],),
            first.machines_allocated,
            first.phase,
        )
        with pytest.raises(ConfigurationError):
            schedule.validate()

    def test_missing_round_rejected(self):
        schedule = build_move_schedule(2, 4)
        schedule.rounds = schedule.rounds[:-1]
        with pytest.raises(ConfigurationError):
            schedule.validate()

    def test_machine_used_twice_in_round_rejected(self):
        schedule = build_move_schedule(3, 5)
        first = schedule.rounds[0]
        bad = first.transfers[:1] + (
            Transfer(first.transfers[0].sender, first.transfers[1].receiver),
        ) + first.transfers[2:]
        schedule.rounds[0] = Round(0, bad, first.machines_allocated, first.phase)
        with pytest.raises(ConfigurationError):
            schedule.validate()

    def test_noop_with_rounds_rejected(self):
        schedule = MoveSchedule(3, 3)
        schedule.rounds = [Round(0, (Transfer(0, 1),), 3, 1)]
        with pytest.raises(ConfigurationError):
            schedule.validate()
