"""Tests for repro.tenancy: specs, quotas, composite workloads, and the
tenant-tagged serve path.

The two load-bearing guarantees pinned here:

* **bit-identity** — a single unthrottled default tenant leaves the
  serve path bit-identical to the untagged code (list equality on every
  sampled latency), because tenancy adds zero RNG draws;
* **per-tenant conservation** — ``offered = served + shed + errored +
  in-flight`` holds exactly for every tenant and the per-tenant buckets
  sum to the fleet identity, under arbitrary quota/priority mixes
  (a Hypothesis property).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.simulator import EngineConfig
from repro.errors import ConfigurationError
from repro.serve import ServeSession, ServerEngine, poisson_arrivals
from repro.serve.admission import AdmissionConfig
from repro.telemetry import Telemetry
from repro.telemetry.metrics import labeled
from repro.telemetry.slo import SLOConfig, SLOMonitor
from repro.tenancy import (
    DEFAULT_TENANT,
    TenantAdmission,
    TenantRegistry,
    TenantSpec,
    TokenBucket,
    build_registry,
    composite_arrivals,
)
from repro.workloads.trace import LoadTrace, compose_traces

SAT = 12.0


def small_config(**kwargs):
    defaults = dict(max_nodes=4, saturation_rate_per_node=SAT, db_size_kb=5 * 1024)
    defaults.update(kwargs)
    return EngineConfig(**defaults)


def spec(name="a", **kwargs):
    defaults = dict(profile="poisson:rate=5")
    defaults.update(kwargs)
    return TenantSpec(name=name, **defaults)


# ----------------------------------------------------------------------
# Specs and registry
# ----------------------------------------------------------------------
class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TenantSpec(name="", profile="poisson:rate=1")
        with pytest.raises(ConfigurationError):
            spec(name='bad"name')  # label-unsafe
        with pytest.raises(ConfigurationError):
            spec(weight=0)
        with pytest.raises(ConfigurationError):
            spec(quota_rps=0.0)
        with pytest.raises(ConfigurationError):
            spec(quota_burst=0.5)
        with pytest.raises(ConfigurationError):
            spec(slo_objective=1.0)
        with pytest.raises(ConfigurationError):
            spec(shed_slo=1.5)

    def test_effective_burst_defaults_to_two_seconds_of_refill(self):
        assert spec(quota_rps=10.0).effective_burst == 20.0
        assert spec(quota_rps=0.2).effective_burst == 1.0  # floor of one
        assert spec(quota_rps=10.0, quota_burst=5.0).effective_burst == 5.0
        assert spec().effective_burst is None


class TestTenantRegistry:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ConfigurationError):
            TenantRegistry(tenants=[])
        with pytest.raises(ConfigurationError):
            build_registry([spec("a"), spec("a")])

    def test_shed_order_lowest_weight_first_registry_order_ties(self):
        registry = build_registry(
            [spec("gold", weight=3), spec("b1"), spec("a1"), spec("silver", weight=2)]
        )
        assert registry.shed_order() == ["b1", "a1", "silver", "gold"]
        assert registry.max_weight == 3

    def test_weighted_fair_aggregate_quota(self):
        registry = TenantRegistry(
            tenants=[
                spec("pinned", quota_rps=10.0),
                spec("heavy", weight=3),
                spec("light", weight=1),
            ],
            aggregate_quota_rps=50.0,
        )
        # Explicit quota wins; the remaining 40 rps pool splits 3:1.
        assert registry.quota_for("pinned") == 10.0
        assert registry.quota_for("heavy") == pytest.approx(30.0)
        assert registry.quota_for("light") == pytest.approx(10.0)

    def test_no_quota_means_unthrottled(self):
        registry = build_registry([spec("a"), spec("b")])
        assert registry.quota_for("a") is None
        with pytest.raises(ConfigurationError):
            registry.quota_for("nope")

    def test_json_roundtrip_and_unknown_fields(self, tmp_path):
        registry = TenantRegistry(
            tenants=[spec("a", weight=2, quota_rps=3.0), spec("b")],
            aggregate_quota_rps=9.0,
        )
        path = tmp_path / "spec.json"
        registry.save(path)
        loaded = TenantRegistry.load(path)
        assert loaded == registry

        with pytest.raises(ConfigurationError):
            TenantRegistry.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text('{"tenants": [{"name": "a", "profile": "p", "typo": 1}]}')
        with pytest.raises(ConfigurationError, match="typo"):
            TenantRegistry.load(bad)
        bad.write_text("not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            TenantRegistry.load(bad)


# ----------------------------------------------------------------------
# Token buckets and tenant admission
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0)
        assert [bucket.admit(0.0) for _ in range(3)] == [None, None, None]
        retry = bucket.admit(0.0)
        assert retry == pytest.approx(0.5)  # one token at 2/s
        assert bucket.admit(0.5) is None  # exactly refilled
        # Tokens cap at the burst, idle time does not bank extra.
        for _ in range(3):
            bucket.admit(100.0)
        assert bucket.admit(100.0) is not None

    def test_zero_rate_sheds_forever(self):
        bucket = TokenBucket(rate=0.0, burst=1.0)
        assert bucket.admit(0.0) is None
        assert bucket.admit(1e9) == float("inf")

    def test_clock_never_rewinds(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        bucket.admit(10.0)
        bucket.admit(5.0)  # out-of-order timestamp must not refill
        assert bucket.last_t == 10.0

    def test_state_roundtrip(self):
        bucket = TokenBucket(rate=2.0, burst=4.0)
        bucket.admit(3.0)
        twin = TokenBucket(rate=2.0, burst=4.0)
        twin.load_state_dict(bucket.state_dict())
        assert twin.tokens == bucket.tokens and twin.last_t == bucket.last_t


class TestTenantAdmission:
    def test_quota_charging_and_counters(self):
        registry = build_registry([spec("free"), spec("capped", quota_rps=1.0)])
        admission = TenantAdmission(registry)
        assert admission.quota_admit("free", 0.0) is None
        # burst = max(1, 2*rate) = 2 tokens, then sheds with retry hints.
        assert admission.quota_admit("capped", 0.0) is None
        assert admission.quota_admit("capped", 0.0) is None
        assert admission.quota_admit("capped", 0.0) == pytest.approx(1.0)
        assert admission.summary()["capped"] == {
            "offered": 3, "quota_shed": 1, "brownout_shed": 0,
        }
        with pytest.raises(KeyError):
            admission.quota_admit("ghost", 0.0)

    def test_brownout_sheddable_below_max_weight(self):
        admission = TenantAdmission(
            build_registry([spec("gold", weight=2), spec("bronze")])
        )
        assert not admission.brownout_sheddable("gold")
        assert admission.brownout_sheddable("bronze")
        # A uniform-weight registry never sheds whole tenants.
        uniform = TenantAdmission(build_registry([spec("a"), spec("b")]))
        assert not uniform.brownout_sheddable("a")

    def test_state_roundtrip(self):
        registry = build_registry([spec("capped", quota_rps=1.0)])
        admission = TenantAdmission(registry)
        for _ in range(5):
            admission.quota_admit("capped", 0.0)
        twin = TenantAdmission(registry)
        twin.load_state_dict(admission.state_dict())
        assert twin.summary() == admission.summary()
        assert twin.quota_admit("capped", 0.0) == admission.quota_admit(
            "capped", 0.0
        )


# ----------------------------------------------------------------------
# Composite workloads + compose_traces satellite
# ----------------------------------------------------------------------
class TestCompositeArrivals:
    def test_merged_sorted_with_parallel_indices(self):
        registry = build_registry(
            [spec("a", profile="poisson:rate=3"), spec("b", profile="poisson:rate=2")]
        )
        times, indices = composite_arrivals(registry, 200.0, seed=5)
        assert len(times) == len(indices)
        assert np.all(np.diff(times) >= 0)
        assert set(np.unique(indices)) == {0, 1}
        # Each tenant's sub-schedule is its own profile, bit-for-bit.
        own = poisson_arrivals(3.0, 200.0, seed=5)
        assert np.array_equal(times[indices == 0], own)

    def test_tenant_zero_uses_bare_seed(self):
        # The single-default-tenant composite equals the untagged
        # schedule exactly — the bit-identity anchor.
        registry = TenantRegistry.default("poisson:rate=4")
        times, indices = composite_arrivals(registry, 300.0, seed=9)
        assert np.array_equal(times, poisson_arrivals(4.0, 300.0, seed=9))
        assert np.all(indices == 0)

    def test_arrival_seed_pins_the_stream(self):
        pinned = build_registry([spec("a", arrival_seed=77)])
        times_a, _ = composite_arrivals(pinned, 100.0, seed=1)
        times_b, _ = composite_arrivals(pinned, 100.0, seed=2)
        assert np.array_equal(times_a, times_b)


class TestComposeTraces:
    def test_sum_of_aligned_components(self):
        a = LoadTrace(np.ones(4) * 10.0, slot_seconds=60.0)
        b = LoadTrace(np.ones(4) * 5.0, slot_seconds=60.0)
        composite = compose_traces([a, b])
        assert composite.slot_seconds == 60.0
        assert np.array_equal(composite.values, np.ones(4) * 15.0)

    def test_shorter_component_cycles_under_max(self):
        long = LoadTrace(np.arange(6, dtype=float), slot_seconds=60.0)
        short = LoadTrace(np.array([100.0, 200.0]), slot_seconds=60.0)
        composite = compose_traces([long, short])
        assert len(composite) == 6
        assert np.array_equal(
            composite.values,
            np.arange(6) + np.array([100.0, 200.0, 100.0, 200.0, 100.0, 200.0]),
        )

    def test_ragged_tail_slot_never_off_by_one(self):
        # Regression: a 1441-minute trace composed with a 24-hour trace
        # at hourly slots must yield exactly 24 slots — the ragged
        # 1-minute tail drops, it must not round the length up to 25.
        minutes = LoadTrace(np.ones(1441), slot_seconds=60.0)
        hours = LoadTrace(np.ones(24) * 60.0, slot_seconds=3600.0)
        composite = compose_traces([minutes, hours], slot_seconds=3600.0)
        assert len(composite) == 24
        assert np.array_equal(composite.values, np.ones(24) * 120.0)


# ----------------------------------------------------------------------
# SLO monitor label keys satellite
# ----------------------------------------------------------------------
class TestSLOMonitorLabels:
    def test_metric_and_monitor_keys_are_canonical(self):
        monitor = SLOMonitor(SLOConfig(), labels={"tenant": "checkout"})
        assert monitor.monitor_key == 'slo{tenant="checkout"}'
        assert (
            monitor.metric_key("slo.fast_burn")
            == labeled("slo.fast_burn", tenant="checkout")
        )
        plain = SLOMonitor(SLOConfig())
        assert plain.monitor_key == "slo"
        assert plain.metric_key("slo.fast_burn") == "slo.fast_burn"

    def test_labelled_monitor_writes_labelled_gauges_and_events(self):
        tel = Telemetry()
        config = SLOConfig(
            objective=0.9, fast_window_s=10.0, slow_window_s=10.0,
            burn_threshold=1.0,
        )
        monitor = SLOMonitor(config, tel, labels={"tenant": "t1"})
        monitor.observe(1.0, good=0, bad=50)
        key = labeled("slo.fast_burn", tenant="t1")
        assert tel.gauge(key).value > 0
        alerts = [
            e for e in tel.timeline.events if e["type"] == "slo_alert"
        ]
        assert alerts and alerts[0]["tenant"] == "t1"


# ----------------------------------------------------------------------
# Tenant-tagged serve path
# ----------------------------------------------------------------------
def run_session(registry=None, *, duration=600.0, seed=3, rate=None, **engine_kwargs):
    engine = ServerEngine(
        small_config(),
        initial_nodes=2,
        slot_seconds=60.0,
        admission=AdmissionConfig(queue_limit_seconds=5.0),
        seed=seed,
        tenancy=TenantAdmission(registry) if registry is not None else None,
        **engine_kwargs,
    )
    if registry is not None:
        arrivals, indices = composite_arrivals(registry, duration, seed=seed)
        session = ServeSession(
            engine, arrivals, tenant_indices=indices,
            tenant_names=registry.names(),
        )
    else:
        arrivals = poisson_arrivals(rate, duration, seed=seed)
        session = ServeSession(engine, arrivals)
    report = session.run(duration)
    return engine, session, report


class TestServePathTenancy:
    def test_single_default_tenant_is_bit_identical_to_untagged(self):
        rate = 8.0
        registry = TenantRegistry.default(f"poisson:rate={rate:g}")
        _, _, tagged = run_session(registry)
        _, _, plain = run_session(None, rate=rate)
        # List equality, not statistics: same arrivals, same admission
        # verdicts, same sampled latency for every single request.
        assert tagged.latencies_ms == plain.latencies_ms
        assert (tagged.offered, tagged.accepted, tagged.rejected) == (
            plain.offered, plain.accepted, plain.rejected,
        )

    def test_quota_shed_conservation_and_labelled_counters(self):
        registry = build_registry(
            [spec("free", profile="poisson:rate=5"),
             spec("capped", profile="poisson:rate=5", quota_rps=2.0)]
        )
        tel = Telemetry()
        engine, _, report = run_session(registry, telemetry=tel)
        assert report.tenants_consistent()
        for line in report.tenant_conservation_lines():
            assert line.endswith("(exact)")
        capped = report.tenants["capped"]
        assert capped["rejected"] > 0
        shed_counter = tel.counter(
            labeled("serve.tenant.quota_shed", tenant="capped")
        )
        assert shed_counter.value == engine.tenancy.quota_shed["capped"]
        assert engine.healthz()["tenants"]["capped"]["quota_shed"] > 0

    def test_per_tenant_slo_monitors_use_spec_objectives(self):
        registry = build_registry(
            [spec("tight", latency_slo_ms=1.0, slo_objective=0.5),
             spec("loose", latency_slo_ms=60_000.0)]
        )
        engine, _, _ = run_session(registry)
        tight = engine.tenant_slos["tight"].status()
        loose = engine.tenant_slos["loose"].status()
        assert tight["objective"] == 0.5
        assert tight["good_fraction"] < loose["good_fraction"]
        assert loose["good_fraction"] == pytest.approx(1.0)

    def test_report_renders_tenant_sections(self):
        registry = build_registry(
            [spec("a", profile="poisson:rate=4"), spec("b", profile="poisson:rate=2")]
        )
        _, session, report = run_session(registry)
        text = session.format_report()
        assert 'conservation{tenant="a"}' in text
        assert "SLO[a]" in text and "SLO[b]" in text


# ----------------------------------------------------------------------
# Property: per-tenant conservation under random quota/priority mixes
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    quotas=st.lists(
        st.one_of(st.none(), st.floats(min_value=0.5, max_value=6.0)),
        min_size=1, max_size=4,
    ),
    weights=st.lists(st.integers(min_value=1, max_value=3), min_size=4, max_size=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_per_tenant_conservation_property(quotas, weights, seed):
    """offered = served + shed + errored + in-flight holds exactly per
    tenant, and the per-tenant buckets sum to the fleet identity, for
    arbitrary quota/weight mixes."""
    specs = [
        TenantSpec(
            name=f"t{i}",
            profile=f"poisson:rate={2 + i}",
            weight=weights[i % len(weights)],
            quota_rps=quota,
        )
        for i, quota in enumerate(quotas)
    ]
    registry = build_registry(specs)
    engine = ServerEngine(
        small_config(),
        initial_nodes=1,
        slot_seconds=60.0,
        admission=AdmissionConfig(queue_limit_seconds=2.0),
        seed=seed % 97,
        tenancy=TenantAdmission(registry),
    )
    duration = 240.0
    arrivals, indices = composite_arrivals(registry, duration, seed=seed)
    session = ServeSession(
        engine, arrivals, tenant_indices=indices, tenant_names=registry.names()
    )
    report = session.run(duration)

    assert report.tenants_consistent()
    totals = {"offered": 0, "accepted": 0, "rejected": 0, "errored": 0}
    for name in registry.names():
        bucket = report.tenants.get(name, {})
        in_flight = report.tenant_in_flight(name)
        assert bucket.get("offered", 0) == (
            bucket.get("accepted", 0)
            + bucket.get("rejected", 0)
            + bucket.get("errored", 0)
            + in_flight
        )
        for key in totals:
            totals[key] += bucket.get(key, 0)
    assert totals["offered"] == report.offered
    assert totals["accepted"] == report.accepted
    assert totals["rejected"] == report.rejected
    assert totals["errored"] == report.errored
