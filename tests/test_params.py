"""Tests for repro.core.params (Section 4.1 model parameters)."""

import pytest

from repro.core.params import (
    PAPER_PARAMETERS,
    PAPER_SATURATION_RATE,
    SystemParameters,
)
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_match_paper(self):
        assert PAPER_PARAMETERS.q == pytest.approx(284.7)
        assert PAPER_PARAMETERS.q_max == pytest.approx(350.4)
        assert PAPER_PARAMETERS.d_seconds == 4646.0
        assert PAPER_PARAMETERS.partitions_per_node == 6

    def test_rejects_non_positive_q(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(q=0.0)

    def test_rejects_q_max_below_q(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(q=300.0, q_max=200.0)

    def test_rejects_bad_d(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(d_seconds=-1.0)

    def test_rejects_bad_partitions(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(partitions_per_node=0)

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(interval_seconds=0.0)

    def test_rejects_negative_max_machines(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(max_machines=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_PARAMETERS.q = 1.0  # type: ignore[misc]


class TestFromSaturation:
    def test_paper_fractions(self):
        params = SystemParameters.from_saturation(438.0)
        assert params.q == pytest.approx(438.0 * 0.65)
        assert params.q_max == pytest.approx(438.0 * 0.80)

    def test_custom_fractions(self):
        params = SystemParameters.from_saturation(400.0, q_fraction=0.5, q_max_fraction=0.9)
        assert params.q == pytest.approx(200.0)
        assert params.q_max == pytest.approx(360.0)

    def test_rejects_bad_saturation(self):
        with pytest.raises(ConfigurationError):
            SystemParameters.from_saturation(0.0)

    def test_rejects_inverted_fractions(self):
        with pytest.raises(ConfigurationError):
            SystemParameters.from_saturation(438.0, q_fraction=0.9, q_max_fraction=0.5)

    def test_forwards_kwargs(self):
        params = SystemParameters.from_saturation(438.0, interval_seconds=60.0)
        assert params.interval_seconds == 60.0


class TestDerived:
    def test_with_q_fraction(self):
        params = SystemParameters().with_q_fraction(0.5)
        assert params.q == pytest.approx(PAPER_SATURATION_RATE * 0.5)
        # Other fields preserved.
        assert params.q_max == SystemParameters().q_max

    def test_with_q_fraction_clamped_at_q_max(self):
        params = SystemParameters().with_q_fraction(0.95)
        assert params.q <= params.q_max

    def test_with_q_fraction_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            SystemParameters().with_q_fraction(0.0)

    def test_migration_rate_matches_paper(self):
        # 1106 MB in 4646 s is the paper's R = 244 kB/s.
        assert PAPER_PARAMETERS.migration_rate_kbps == pytest.approx(243.8, abs=0.5)

    def test_machines_for_load(self, params):
        assert params.machines_for_load(0.0) == 1
        assert params.machines_for_load(params.q) == 1
        assert params.machines_for_load(params.q + 0.001) == 2
        assert params.machines_for_load(10 * params.q) == 10

    def test_intervals_rounds_up(self, params):
        assert params.intervals(1.0) == 1
        assert params.intervals(300.0) == 1
        assert params.intervals(300.1) == 2
        assert params.intervals(900.0) == 3
