"""Time-series store: tier validation, rollups, bounded memory, queries."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import Telemetry, TimeSeriesStore
from repro.telemetry.timeseries import DEFAULT_TIERS


def sampled_store(ticks=25, tiers=(1, 5), capacity=720):
    """A store fed by a tiny synthetic registry for ``ticks`` ticks."""
    telemetry = Telemetry()
    store = TimeSeriesStore(tiers=tiers, capacity=capacity)
    for t in range(ticks):
        telemetry.counter("jobs").inc(2.0)
        telemetry.gauge("machines").set(float(t % 4))
        telemetry.histogram("latency_ms").observe(10.0 * (t + 1))
        store.sample(telemetry.metrics, float(t))
    return store


class TestConfiguration:
    def test_default_tiers(self):
        store = TimeSeriesStore()
        assert store.tiers == DEFAULT_TIERS
        assert store.summary()["windows"] == list(DEFAULT_TIERS)

    def test_tiers_must_start_at_one(self):
        with pytest.raises(ConfigurationError, match="start at 1"):
            TimeSeriesStore(tiers=(2, 10))

    def test_tiers_must_strictly_increase(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            TimeSeriesStore(tiers=(1, 10, 10))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            TimeSeriesStore(capacity=0)


class TestSampling:
    def test_counters_and_gauges_sampled_by_value(self):
        store = sampled_store(ticks=3)
        points = store.query("jobs")
        assert [p["last"] for p in points] == [2.0, 4.0, 6.0]
        assert [p["t"] for p in points] == [0.0, 1.0, 2.0]
        machines = store.query("machines")
        assert [p["last"] for p in machines] == [0.0, 1.0, 2.0]

    def test_histograms_sampled_as_quantiles_and_count(self):
        store = sampled_store(ticks=4)
        names = store.names()
        assert "latency_ms:p50" in names
        assert "latency_ms:p99" in names
        assert "latency_ms:count" in names
        counts = store.query("latency_ms:count")
        assert [p["last"] for p in counts] == [1.0, 2.0, 3.0, 4.0]

    def test_raw_points_carry_window_stats(self):
        store = sampled_store(ticks=1)
        (point,) = store.query("jobs")
        assert point == {"t": 0.0, "min": 2.0, "max": 2.0, "mean": 2.0, "last": 2.0}

    def test_samples_taken_counts_ticks_not_series(self):
        store = sampled_store(ticks=7)
        assert store.samples_taken == 7


class TestRollups:
    def test_rollup_emits_only_on_full_windows(self):
        store = sampled_store(ticks=12, tiers=(1, 5))
        assert len(store.query("jobs", window=1)) == 12
        # 12 ticks fill two 5-tick windows; the third is still open.
        assert len(store.query("jobs", window=5)) == 2

    def test_rollup_aggregates_min_max_mean_last(self):
        store = sampled_store(ticks=5, tiers=(1, 5))
        (window,) = store.query("machines", window=5)
        # Gauge cycles 0,1,2,3,0 over the window.
        assert window["t"] == 0.0
        assert window["min"] == 0.0
        assert window["max"] == 3.0
        assert window["mean"] == pytest.approx(6.0 / 5.0)
        assert window["last"] == 0.0

    def test_memory_is_bounded_by_capacity(self):
        store = sampled_store(ticks=50, tiers=(1, 5), capacity=8)
        raw = store.query("jobs", window=1)
        assert len(raw) == 8
        # Ring keeps the newest points: counter value 2*(t+1).
        assert raw[-1]["last"] == 100.0
        assert raw[0]["last"] == 2.0 * 43
        assert len(store.query("jobs", window=5)) == 8


class TestQueries:
    def test_unknown_window_raises(self):
        store = sampled_store()
        with pytest.raises(ConfigurationError, match="rollup tier"):
            store.query("jobs", window=7)

    def test_unknown_series_returns_empty(self):
        store = sampled_store()
        assert store.query("no.such.series") == []
        assert store.latest("no.such.series") is None

    def test_latest_is_newest_raw_point(self):
        store = sampled_store(ticks=3)
        latest = store.latest("jobs")
        assert latest is not None
        assert latest["t"] == 2.0
        assert latest["last"] == 6.0

    def test_summary_lists_series_sorted(self):
        store = sampled_store(ticks=2)
        summary = store.summary()
        assert summary["series"] == sorted(summary["series"])
        assert summary["capacity"] == 720
        assert summary["samples"] == 2

    def test_dump_round_trips_through_json(self):
        import json

        store = sampled_store(ticks=12, tiers=(1, 5))
        dump = json.loads(json.dumps(store.dump()))
        assert dump["format"] == "repro-timeseries/1"
        assert dump["windows"] == [1, 5]
        assert dump["points"]["jobs"]["1"] == store.query("jobs", window=1)
        assert dump["points"]["jobs"]["5"] == store.query("jobs", window=5)


class TestDeterminism:
    def test_sampling_never_mutates_the_registry(self):
        telemetry = Telemetry()
        telemetry.counter("jobs").inc(3.0)
        telemetry.histogram("latency_ms").observe(12.0)
        before = telemetry.records()
        store = TimeSeriesStore()
        for t in range(5):
            store.sample(telemetry.metrics, float(t))
        assert telemetry.records() == before
