"""Scenario tests for the planner: realistic shapes it must handle well.

Each scenario encodes a situation the paper discusses and pins the
qualitative behaviour of the optimal plan.
"""

import numpy as np
import pytest

from repro.core.params import SystemParameters
from repro.core.planner import Planner
from repro.errors import InfeasiblePlanError

PARAMS = SystemParameters(interval_seconds=300.0, partitions_per_node=6)
Q = PARAMS.q


def plan(load_machines, initial, max_machines=16, params=PARAMS):
    planner = Planner(params, max_machines=max_machines)
    return planner.best_moves(np.asarray(load_machines) * params.q, initial)


class TestDiurnalCycle:
    def test_full_day_valley_and_peak(self):
        """Night valley -> day peak -> night: scale in, out, in again."""
        load = (
            [2.5] * 3 + [0.8] * 6 + [2.0] * 2 + [4.5] * 6 + [2.5] * 2 + [0.8] * 4
        )
        result = plan(load, initial=3)
        machine_series = [result.machines_at(t) for t in range(len(load))]
        assert min(machine_series) == 1
        assert max(machine_series) == 5
        assert result.final_machines == 1

    def test_scale_in_prompt_on_long_valley(self):
        """A long valley makes immediate scale-in optimal (cost falls
        every interval spent smaller)."""
        load = [3.5] + [0.9] * 12
        result = plan(load, initial=4)
        first = result.first_real_move()
        assert first is not None
        assert first.after < 4
        assert first.start <= 1

    def test_single_interval_dip_saves_nothing(self):
        """A 1-interval dip cannot be exploited: the scale-out back to 4
        occupies the dip interval at an average of 4 machines, so the
        best dip-chasing plan exactly ties holding steady (cost 7 x 4).
        """
        load = [3.5, 3.5, 3.5, 2.2, 3.5, 3.5, 3.5]
        result = plan(load, initial=4)
        assert result.cost == pytest.approx(28.0)

    def test_two_interval_dip_is_worth_chasing(self):
        """Two dip intervals leave one interval actually held at 3
        machines, so scaling in strictly beats holding."""
        load = [3.5, 3.5, 3.5, 2.2, 2.2, 3.5, 3.5]
        result = plan(load, initial=4)
        assert result.cost < 28.0 - 1e-9
        machine_floor = min(result.machines_at(t) for t in range(7))
        assert machine_floor == 3


class TestSpikes:
    def test_predicted_spike_is_prestaged(self):
        """A known future spike triggers scale-out ahead of time, and the
        effective capacity covers every interval of the ramp."""
        load = [1.5] * 6 + [7.5] * 4
        result = plan(load, initial=2)
        spike_start = 6
        # Enough machines by the time the spike lands.
        assert result.machines_at(spike_start) >= 8
        # But not the whole time: cost-optimal plans wait.
        assert result.machines_at(1) < 8

    def test_impossible_spike_is_reported(self):
        load = [0.9] + [12.0] * 5
        with pytest.raises(InfeasiblePlanError):
            plan(load, initial=1, max_machines=16)

    def test_spike_needs_more_than_max_machines(self):
        load = [1.5] * 6 + [30.0] * 2
        with pytest.raises(InfeasiblePlanError):
            plan(load, initial=2, max_machines=10)


class TestStaircases:
    def test_monotone_ramp_produces_monotone_machines(self):
        load = np.linspace(0.8, 7.8, 20)
        result = plan(load, initial=1)
        series = [result.machines_at(t) for t in range(20)]
        assert series == sorted(series)

    def test_step_function_matches_needs(self):
        load = [1.5] * 5 + [3.5] * 5 + [5.5] * 5
        result = plan(load, initial=2)
        assert result.machines_at(4) >= 2
        assert result.machines_at(9) >= 4
        assert result.machines_at(14) >= 6
        # Never grossly over-provisioned.
        assert max(result.machines_at(t) for t in range(15)) <= 7


class TestCostStructure:
    def test_higher_q_means_cheaper_plans(self):
        """Raising Q (less buffer) always weakly lowers the optimal cost."""
        load_machines = np.concatenate(
            [np.full(4, 1.2), np.linspace(1.2, 4.8, 8), np.full(4, 4.8)]
        )
        loose = SystemParameters(
            q=PARAMS.q, q_max=PARAMS.q_max, interval_seconds=300.0,
            partitions_per_node=6,
        )
        tight = SystemParameters(
            q=PARAMS.q * 1.15, q_max=PARAMS.q_max * 1.15,
            interval_seconds=300.0, partitions_per_node=6,
        )
        raw_load = load_machines * PARAMS.q
        plan_loose = Planner(loose, max_machines=16).best_moves(raw_load, 2)
        plan_tight = Planner(tight, max_machines=16).best_moves(raw_load, 2)
        assert plan_tight.cost <= plan_loose.cost + 1e-9

    def test_plan_cost_additive_over_independent_halves(self):
        """For a load that returns to its start level, planning the halves
        separately cannot beat planning jointly (optimality check)."""
        half = [1.5, 2.5, 3.5, 2.5, 1.5]
        joint = plan(half + half, initial=2)
        single = plan(half, initial=2)
        # Joint plan <= 2x single (it can share the boundary state).
        assert joint.cost <= 2 * single.cost + 1e-6

    def test_faster_migration_never_hurts(self):
        """Halving D (faster migrations) weakly reduces plan cost."""
        slow = PARAMS
        fast = SystemParameters(
            q=PARAMS.q, q_max=PARAMS.q_max, d_seconds=PARAMS.d_seconds / 2,
            interval_seconds=300.0, partitions_per_node=6,
        )
        load = np.concatenate(
            [np.full(3, 1.2), np.linspace(1.5, 6.5, 9), np.full(4, 1.0)]
        ) * PARAMS.q
        cost_slow = Planner(slow, max_machines=16).best_moves(load, 2).cost
        cost_fast = Planner(fast, max_machines=16).best_moves(load, 2).cost
        assert cost_fast <= cost_slow + 1e-9
