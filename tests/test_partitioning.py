"""Tests for hash and range partitioning schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cluster import Cluster
from repro.engine.hashing import key_to_bucket
from repro.engine.partitioning import HashPartitioner, RangePartitioner
from repro.engine.table import DatabaseSchema, TableSchema
from repro.errors import ConfigurationError, EngineError


class TestHashPartitioner:
    def test_matches_key_to_bucket(self):
        partitioner = HashPartitioner(64)
        for key in ("a", "cart-123", 42):
            assert partitioner.bucket_of(key) == key_to_bucket(key, 64)

    def test_rejects_bad_bucket_count(self):
        with pytest.raises(ConfigurationError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_basic_ranges(self):
        partitioner = RangePartitioner(3, ["h", "p"])
        assert partitioner.bucket_of("a") == 0
        assert partitioner.bucket_of("g") == 0
        assert partitioner.bucket_of("h") == 1
        assert partitioner.bucket_of("o") == 1
        assert partitioner.bucket_of("p") == 2
        assert partitioner.bucket_of("z") == 2

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ConfigurationError):
            RangePartitioner(3, ["a"])  # wrong count
        with pytest.raises(ConfigurationError):
            RangePartitioner(3, ["p", "h"])  # unsorted
        with pytest.raises(ConfigurationError):
            RangePartitioner(3, ["h", "h"])  # duplicate

    def test_from_sample_equi_depth(self):
        keys = [f"key-{i:06d}" for i in range(1000)]
        partitioner = RangePartitioner.from_sample(keys, 10)
        counts = np.zeros(10)
        for key in keys:
            counts[partitioner.bucket_of(key)] += 1
        assert counts.min() >= 50
        assert counts.max() <= 200

    def test_from_sample_too_small(self):
        with pytest.raises(ConfigurationError):
            RangePartitioner.from_sample(["a", "b"], 10)

    @given(st.lists(st.text(min_size=1, max_size=8), min_size=20, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_order_preserving(self, keys):
        partitioner = RangePartitioner.from_sample(keys, 4)
        ordered = sorted(keys, key=lambda k: k.encode("utf-8"))
        buckets = [partitioner.bucket_of(k) for k in ordered]
        assert buckets == sorted(buckets)


class TestClusterIntegration:
    def schema(self):
        return DatabaseSchema().add(TableSchema(name="T", key_column="k"))

    def test_cluster_uses_partitioner(self):
        partitioner = RangePartitioner(8, ["b", "d", "f", "h", "j", "l", "n"])
        cluster = Cluster(
            self.schema(), initial_nodes=2, partitions_per_node=2,
            num_buckets=8, max_nodes=4, partitioner=partitioner,
        )
        assert cluster.bucket_of("a") == 0
        assert cluster.bucket_of("z") == 7

    def test_bucket_count_mismatch_rejected(self):
        with pytest.raises(EngineError):
            Cluster(
                self.schema(), num_buckets=16,
                partitioner=HashPartitioner(8),
            )

    def test_range_partitioning_is_skew_prone(self):
        """The Section 8.1 contrast: sequential keys pile into one range
        bucket under range partitioning but spread under hashing."""
        keys = [f"cart-2016-11-25-{i:08d}" for i in range(2000)]

        def max_share(partitioner):
            counts = np.zeros(partitioner.num_buckets)
            for key in keys:
                counts[partitioner.bucket_of(key)] += 1
            return counts.max() / counts.sum()

        # Ranges built from *yesterday's* keys: today's sequential ids
        # all land past the final boundary.
        old_keys = [f"cart-2016-11-24-{i:08d}" for i in range(2000)]
        range_part = RangePartitioner.from_sample(old_keys, 16)
        hash_part = HashPartitioner(16)
        assert max_share(range_part) > 0.9
        assert max_share(hash_part) < 0.2

    def test_migration_respects_partitioner(self):
        """Bucket moves relocate exactly the partitioner's keys."""
        partitioner = RangePartitioner(4, ["g", "n", "t"])
        cluster = Cluster(
            self.schema(), initial_nodes=2, partitions_per_node=1,
            num_buckets=4, max_nodes=4, partitioner=partitioner,
        )
        for key in ("alpha", "hotel", "oscar", "zulu"):
            cluster.route(key).put("T", key, {"k": key})
        bucket = cluster.bucket_of("zulu")
        target = 1 - cluster.plan.node_of(bucket)
        moved = cluster.move_bucket(bucket, target)
        assert moved == 1
        assert cluster.route("zulu").node_id == target
        assert cluster.route("zulu").get("T", "zulu") == {"k": "zulu"}
