"""Tests for the plain-text visualization helpers."""

import numpy as np
import pytest

from repro import viz
from repro.errors import ConfigurationError


class TestSparkline:
    def test_monotone_series(self):
        line = viz.sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_flat_series(self):
        assert viz.sparkline([5, 5, 5]) == "▁▁▁"

    def test_downsamples_to_width(self):
        line = viz.sparkline(np.arange(1000.0), width=50)
        assert len(line) == 50

    def test_fixed_scale(self):
        half = viz.sparkline([50.0], lo=0.0, hi=100.0)
        assert half in "▄▅"

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            viz.sparkline([])


class TestBarChart:
    def test_layout(self):
        chart = viz.bar_chart(["aa", "b"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            viz.bar_chart(["a"], [1.0, 2.0])

    def test_all_zero(self):
        chart = viz.bar_chart(["a"], [0.0])
        assert "#" not in chart


class TestLoadVsCapacity:
    def test_violation_markers(self):
        load = [1.0, 5.0, 1.0]
        capacity = [2.0, 2.0, 2.0]
        strip = viz.load_vs_capacity_strip(load, capacity, width=3)
        marker_row = strip.splitlines()[-1]
        assert marker_row.endswith("! ")

    def test_no_violations(self):
        strip = viz.load_vs_capacity_strip([1, 1], [2, 2], width=2)
        assert "!" not in strip

    def test_mismatched(self):
        with pytest.raises(ConfigurationError):
            viz.load_vs_capacity_strip([1.0], [1.0, 2.0])


class TestTimeline:
    def test_digits_and_overflow(self):
        line = viz.timeline([1, 2, 9, 10, 14], width=5)
        assert line == "129XX"
