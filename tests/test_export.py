"""Tests for CSV export of simulation results."""

import csv

import numpy as np
import pytest

from repro.core.params import SystemParameters
from repro.engine.simulator import EngineConfig, EngineSimulator
from repro.simulation import (
    CapacitySimulator,
    export_capacity_result,
    export_run_result,
)
from repro.strategies import StaticStrategy
from repro.workloads.trace import LoadTrace

PARAMS = SystemParameters(interval_seconds=300.0, partitions_per_node=6)


class TestRunResultExport:
    def test_round_trip(self, tmp_path):
        sim = EngineSimulator(EngineConfig(max_nodes=2), initial_nodes=1)
        trace = LoadTrace(np.full(5, 100.0 * 6), slot_seconds=6.0)
        result = sim.run(trace)
        path = export_run_result(result, tmp_path / "run.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.time)
        assert float(rows[0]["offered_txn_s"]) == pytest.approx(100.0)
        assert set(rows[0]) >= {
            "time_s", "served_txn_s", "p99_ms", "machines", "reconfiguring"
        }

    def test_reconfiguring_flag_exported(self, tmp_path):
        sim = EngineSimulator(EngineConfig(max_nodes=4), initial_nodes=2)
        sim.start_move(4)
        trace = LoadTrace(np.full(10, 100.0 * 6), slot_seconds=6.0)
        result = sim.run(trace)
        path = export_run_result(result, tmp_path / "run.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["reconfiguring"] == "1"


class TestCapacityResultExport:
    def test_round_trip(self, tmp_path):
        trace = LoadTrace(
            np.full(10, 1.5 * PARAMS.q * 300.0), slot_seconds=300.0
        )
        result = CapacitySimulator(PARAMS, max_machines=8).run(
            trace, StaticStrategy(2)
        )
        path = export_capacity_result(result, tmp_path / "cap.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 10
        assert int(rows[0]["target_machines"]) == 2
        assert float(rows[0]["load_txn_s"]) == pytest.approx(1.5 * PARAMS.q)
        assert rows[0]["insufficient"] == "0"
