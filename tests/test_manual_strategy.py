"""Tests for the manual-provisioning overlay strategy."""

import numpy as np
import pytest

from repro.core.params import SystemParameters
from repro.errors import ConfigurationError
from repro.simulation.capacity_sim import CapacitySimulator
from repro.strategies import (
    ManualOverrideStrategy,
    ProvisioningWindow,
    StaticStrategy,
)
from repro.strategies.base import SimState
from repro.workloads.trace import LoadTrace

PARAMS = SystemParameters(interval_seconds=300.0, partitions_per_node=6)
INTERVALS_PER_DAY = 288


def state(interval, machines, rate=100.0):
    return SimState(
        interval=interval,
        machines=machines,
        load_rate=rate,
        history_rates=np.full(interval + 1, rate),
        slot_seconds=300.0,
    )


class TestWindow:
    def test_active(self):
        window = ProvisioningWindow(2.0, 3.0, 8, label="promo")
        assert not window.active(1.9)
        assert window.active(2.0)
        assert window.active(2.99)
        assert not window.active(3.0)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            ProvisioningWindow(2.0, 2.0, 8)
        with pytest.raises(ConfigurationError):
            ProvisioningWindow(1.0, 2.0, 0)


class TestOverlay:
    def test_floor_enforced_inside_window(self):
        strategy = ManualOverrideStrategy(
            StaticStrategy(2), [ProvisioningWindow(1.0, 2.0, 8)]
        )
        strategy.reset(PARAMS, 10)
        # Outside the window: the base strategy rules (holds at 2).
        assert strategy.decide(state(0, 2)) is None
        # Inside the window: the floor forces a scale-out.
        inside = int(1.5 * INTERVALS_PER_DAY)
        assert strategy.decide(state(inside, 2)) == 8
        # Already at the floor: nothing to do.
        assert strategy.decide(state(inside, 8)) is None

    def test_lead_time_pre_provisions(self):
        strategy = ManualOverrideStrategy(
            StaticStrategy(2), [ProvisioningWindow(1.0, 2.0, 8)], lead_days=0.1
        )
        strategy.reset(PARAMS, 10)
        just_before = int(0.95 * INTERVALS_PER_DAY)
        assert strategy.decide(state(just_before, 2)) == 8

    def test_base_decision_wins_when_higher(self):
        strategy = ManualOverrideStrategy(
            StaticStrategy(9), [ProvisioningWindow(0.0, 1.0, 4)]
        )
        strategy.reset(PARAMS, 10)
        # Static-9 wants 9 >= floor 4: the overlay passes it through.
        assert strategy.initial_machines(100.0) == 9
        assert strategy.decide(state(5, 9)) is None

    def test_initial_machines_respects_floor(self):
        strategy = ManualOverrideStrategy(
            StaticStrategy(2), [ProvisioningWindow(0.0, 1.0, 6)]
        )
        strategy.reset(PARAMS, 10)
        assert strategy.initial_machines(100.0) == 6

    def test_floor_clamped_to_max_machines(self):
        strategy = ManualOverrideStrategy(
            StaticStrategy(2), [ProvisioningWindow(0.0, 1.0, 50)]
        )
        strategy.reset(PARAMS, 5)
        assert strategy.decide(state(3, 2)) == 5

    def test_rejects_negative_lead(self):
        with pytest.raises(ConfigurationError):
            ManualOverrideStrategy(StaticStrategy(2), [], lead_days=-1.0)


class TestSimulation:
    def test_black_friday_floor_in_capacity_sim(self):
        """The composite strategy pre-provisions a known event day."""
        q = PARAMS.q
        # Two days of modest load; day 2 carries a huge known promotion.
        rates = np.concatenate([
            np.full(INTERVALS_PER_DAY, 1.5 * q),
            np.full(INTERVALS_PER_DAY, 7.5 * q),
        ])
        trace = LoadTrace(rates * 300.0, slot_seconds=300.0)
        simulator = CapacitySimulator(PARAMS, max_machines=12)

        plain = simulator.run(trace, StaticStrategy(2))
        composite = simulator.run(
            trace,
            ManualOverrideStrategy(
                StaticStrategy(2),
                [ProvisioningWindow(1.0, 2.0, 10, label="black friday")],
            ),
        )
        assert plain.pct_time_insufficient > 40.0
        assert composite.pct_time_insufficient < 1.0
        # The floor lifts allocation only around the event.
        assert composite.allocated[: INTERVALS_PER_DAY // 2].max() <= 2
        assert composite.allocated[-INTERVALS_PER_DAY // 2 :].min() >= 10
