"""Equivalence and caching tests for the engine's steady-slot fast path.

``EngineSimulator.run`` collapses converged slots into one computed step
(see docs/PERFORMANCE.md); these tests pin that the optimisation is
invisible in the results: every ``RunResult`` column matches the exact
step-by-step path (``force_exact_stepping=True``) to 1e-9, and the
derived SLA-violation and cost metrics are identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.simulator import EngineConfig, EngineSimulator, SkewEvent
from repro.workloads.trace import LoadTrace

SLOT_SECONDS = 30.0

COLUMNS = (
    "time",
    "offered",
    "served",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "mean_ms",
    "machines",
    "reconfiguring",
)


def flat_trace(rate: float, num_slots: int) -> LoadTrace:
    return LoadTrace(
        np.full(num_slots, rate * SLOT_SECONDS), slot_seconds=SLOT_SECONDS
    )


def make_sim(*, force_exact: bool, **kwargs) -> EngineSimulator:
    config = EngineConfig(
        max_nodes=6,
        db_size_kb=kwargs.pop("db_size_kb", 700_000.0),
        force_exact_stepping=force_exact,
    )
    return EngineSimulator(config, initial_nodes=kwargs.pop("initial_nodes", 3))


def scenario_steady(sim: EngineSimulator) -> LoadTrace:
    """Constant sub-saturation load: every slot after warm-up is steady."""
    return flat_trace(600.0, 10)


def scenario_skew_mid_slot(sim: EngineSimulator) -> LoadTrace:
    """A skew event starting and ending mid-slot forces exact stepping in
    the affected slots only."""
    sim.skew_events.append(
        SkewEvent(start_seconds=45.0, end_seconds=105.0, partition_index=2)
    )
    return flat_trace(600.0, 8)


def scenario_migration_spanning_slots(sim: EngineSimulator) -> LoadTrace:
    """A 3 -> 6 scale-out whose migration crosses slot boundaries."""
    migration = sim.start_move(6)
    assert migration.total_seconds > SLOT_SECONDS  # spans >1 slot boundary
    return flat_trace(700.0, 10)


def scenario_backlog_drain(sim: EngineSimulator) -> LoadTrace:
    """Overload then recovery: the backlog builds, saturates at the
    queue clamp and drains over several slots — quiet slots whose state
    moves every step, the batched (S x P) kernel's territory."""
    values = np.array(
        [2200.0, 2200.0, 2200.0, 900.0, 900.0, 900.0, 900.0, 700.0, 700.0]
    )
    return LoadTrace(values * SLOT_SECONDS, slot_seconds=SLOT_SECONDS)


def scenario_fault_plan(sim: EngineSimulator) -> LoadTrace:
    """A mid-run crash (with recovery) and a straggler window: slots
    containing fault activity must step exactly; quiet slots between
    them may still collapse or batch."""
    from repro.faults import FaultInjector, FaultPlan, NodeCrash, NodeStraggler

    plan = FaultPlan(
        [
            NodeCrash(at_seconds=95.0, node_id=2, recover_after_seconds=61.0),
            NodeStraggler(
                at_seconds=185.0, node_id=1, factor=0.5, duration_seconds=47.0
            ),
        ]
    )
    sim.fault_injector = FaultInjector(plan)
    return flat_trace(650.0, 12)


def scenario_skew_slot_aligned(sim: EngineSimulator) -> LoadTrace:
    """Skew whose boundaries land on slot edges: weights differ between
    slots but are constant inside each one, so the redistribution slots
    are quiet-but-moving (batched), never exact."""
    sim.skew_events.append(
        SkewEvent(
            start_seconds=SLOT_SECONDS,
            end_seconds=4 * SLOT_SECONDS,
            partition_index=3,
            factor=4.0,
        )
    )
    return flat_trace(800.0, 8)


SCENARIOS = {
    "steady": scenario_steady,
    "skew_mid_slot": scenario_skew_mid_slot,
    "migration_spanning_slots": scenario_migration_spanning_slots,
    "backlog_drain": scenario_backlog_drain,
    "fault_plan": scenario_fault_plan,
    "skew_slot_aligned": scenario_skew_slot_aligned,
}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_fast_path_matches_exact_path(scenario):
    setup = SCENARIOS[scenario]

    fast_sim = make_sim(force_exact=False)
    fast = fast_sim.run(setup(fast_sim))

    exact_sim = make_sim(force_exact=True)
    exact = exact_sim.run(setup(exact_sim))

    assert exact_sim.fast_slots == 0
    assert exact_sim.batched_slots == 0
    if scenario == "steady":
        assert fast_sim.fast_slots > 0
    if scenario == "backlog_drain":
        assert fast_sim.batched_slots > 0

    for column in COLUMNS:
        np.testing.assert_allclose(
            getattr(fast, column).astype(np.float64),
            getattr(exact, column).astype(np.float64),
            rtol=0.0,
            atol=1e-9,
            err_msg=f"{scenario}: column {column} diverged",
        )
    for pct in ("p50", "p95", "p99"):
        assert fast.sla_violations(pct) == exact.sla_violations(pct)
    assert fast.total_cost() == exact.total_cost()


def test_force_exact_disables_fast_path():
    sim = make_sim(force_exact=True)
    sim.run(scenario_backlog_drain(sim))
    assert sim.fast_slots == 0
    assert sim.batched_slots == 0


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_quiet_paths_bit_identical(scenario):
    """The collapsed and batched paths must reproduce exact stepping bit
    for bit, not merely within tolerance — the contract that lets every
    downstream consumer treat them as invisible."""
    setup = SCENARIOS[scenario]

    fast_sim = make_sim(force_exact=False)
    fast = fast_sim.run(setup(fast_sim))
    exact_sim = make_sim(force_exact=True)
    exact = exact_sim.run(setup(exact_sim))

    for column in COLUMNS:
        np.testing.assert_array_equal(
            getattr(fast, column),
            getattr(exact, column),
            err_msg=f"{scenario}: column {column} not bit-identical",
        )
    np.testing.assert_array_equal(fast_sim._backlog, exact_sim._backlog)


def test_batched_path_exercised_while_draining():
    """The drain scenario must actually take the batched kernel (and
    still leave converged tail slots to the steady fast path)."""
    sim = make_sim(force_exact=False)
    sim.run(scenario_backlog_drain(sim))
    assert sim.batched_slots > 0
    assert sim.fast_slots > 0


def test_node_weights_called_once_per_routing_change():
    """The simulator's weight cache must hit cluster.node_weights() at
    most once per routing change (satellite of the perf PR)."""
    sim = make_sim(force_exact=True)
    cluster = sim.cluster
    calls = {"count": 0}
    original = cluster.node_weights

    def counting_node_weights():
        calls["count"] += 1
        return original()

    cluster.node_weights = counting_node_weights

    sim.run(flat_trace(600.0, 4))
    assert calls["count"] <= 1  # routing never changed

    calls["count"] = 0
    version_before = cluster.routing_version
    sim.start_move(6)
    sim.run(flat_trace(600.0, 6))
    routing_changes = cluster.routing_version - version_before
    assert routing_changes > 0
    assert calls["count"] <= routing_changes


def test_top_percent_latencies_matches_full_sort():
    """np.partition selection must agree with the reference full sort."""
    rng = np.random.default_rng(7)
    sim = make_sim(force_exact=False)
    result = sim.run(flat_trace(600.0, 6))
    # Scatter in noise so the order statistics are non-trivial.
    result.p99_ms[:] = rng.uniform(10.0, 900.0, len(result.p99_ms))
    for percent in (0.5, 1.0, 5.0, 50.0, 100.0):
        count = max(1, int(len(result.p99_ms) * percent / 100.0))
        expected = np.sort(result.p99_ms)[-count:]
        got = result.top_percent_latencies("p99", percent)
        np.testing.assert_array_equal(got, expected)


def test_fast_path_skipped_during_skew_transitions():
    """Slots containing a skew boundary must run the exact path."""
    sim = make_sim(force_exact=False)
    trace = scenario_skew_mid_slot(sim)
    sim.run(trace)
    # 8 slots; the slots holding t=45 and t=105 cannot be fast.
    assert sim.fast_slots <= len(trace) - 2


def test_fast_path_resumes_after_migration():
    """Once the migration lands and backlog converges, slots go fast."""
    sim = make_sim(force_exact=False)
    trace = scenario_migration_spanning_slots(sim)
    sim.run(trace)
    assert sim.fast_slots > 0


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_telemetry_preserves_fast_path_results(scenario):
    """An enabled telemetry handle must not perturb the run: same columns
    bit for bit, same number of collapsed slots — the instrumentation
    replicates ticks for collapsed steps instead of disabling the fast
    path (docs/OBSERVABILITY.md)."""
    from repro.telemetry import Telemetry

    setup = SCENARIOS[scenario]

    bare_sim = make_sim(force_exact=False)
    bare = bare_sim.run(setup(bare_sim))

    tel = Telemetry()
    config = EngineConfig(
        max_nodes=6, db_size_kb=700_000.0, force_exact_stepping=False
    )
    tel_sim = EngineSimulator(config, initial_nodes=3, telemetry=tel)
    instrumented = tel_sim.run(setup(tel_sim))

    assert tel_sim.fast_slots == bare_sim.fast_slots
    assert tel_sim.batched_slots == bare_sim.batched_slots
    for column in COLUMNS:
        np.testing.assert_array_equal(
            getattr(instrumented, column),
            getattr(bare, column),
            err_msg=f"{scenario}: column {column} diverged under telemetry",
        )
    ticks = tel.timeline.ticks
    assert len(ticks) == len(instrumented.time)
    np.testing.assert_array_equal(
        np.array([t["t"] for t in ticks]), instrumented.time
    )
    assert tel.counter("engine.steps").value == len(instrumented.time)
    assert (
        tel.counter("engine.batched_slots").value == tel_sim.batched_slots
    )


def test_partition_weights_are_read_only():
    """The cached weight arrays are handed out by reference; a caller
    mutating them would silently corrupt routing for every later step
    (satellite of the fleet-scale PR)."""
    sim = make_sim(force_exact=False)
    sim.run(flat_trace(600.0, 2))
    weights = sim.partition_weights()
    with pytest.raises(ValueError):
        weights[0] = 0.5
    node_weights = sim.cluster.node_weights()
    with pytest.raises(ValueError):
        node_weights[0] = 0.5
    # Skew-adjusted weights come from the same cache and must be frozen
    # too.
    sim.skew_events.append(
        SkewEvent(start_seconds=0.0, end_seconds=1e9, partition_index=1)
    )
    sim.step(600.0)
    skewed = sim.partition_weights()
    with pytest.raises(ValueError):
        skewed[0] = 0.5
