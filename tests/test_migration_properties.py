"""Property-based tests for live migration against a real cluster.

For any pair of cluster sizes, a migration must terminate, leave the
plan balanced, keep allocation monotone in the right direction, and —
when real rows are present — lose nothing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cluster import Cluster
from repro.engine.migration import Migration
from repro.engine.table import DatabaseSchema, TableSchema

DB_KB = 1106.0 * 1024.0
sizes = st.integers(min_value=1, max_value=10)


def make_cluster(initial: int) -> Cluster:
    schema = DatabaseSchema().add(TableSchema(name="T", key_column="k"))
    return Cluster(
        schema, initial_nodes=initial, partitions_per_node=2,
        num_buckets=120, max_nodes=12,
    )


@given(before=sizes, after=sizes)
@settings(max_examples=40, deadline=None)
def test_migration_terminates_balanced(before, after):
    if before == after:
        return
    cluster = make_cluster(before)
    migration = Migration(cluster, after, DB_KB)
    allocations = [cluster.num_active_nodes]
    steps = 0
    while not migration.completed:
        migration.step(migration.round_seconds or 1.0)
        allocations.append(cluster.num_active_nodes)
        steps += 1
        assert steps < 10_000

    assert cluster.num_active_nodes == after
    fractions = cluster.data_fractions()
    assert len(fractions) == after
    assert sum(fractions.values()) == pytest.approx(1.0)
    # Buckets spread evenly (within integrality).
    counts = [cluster.plan.bucket_counts().get(n, 0) for n in range(after)]
    assert max(counts) - min(counts) <= after
    # Allocation monotone in the move's direction.
    if after > before:
        assert allocations == sorted(allocations)
    else:
        assert allocations == sorted(allocations, reverse=True)
    # Plan compacted after scale-in.
    assert cluster.plan.num_nodes == max(
        cluster.plan.node_of(b) for b in range(cluster.num_buckets)
    ) + 1 or cluster.plan.num_nodes >= after


@given(before=sizes, after=sizes, rows=st.integers(10, 120))
@settings(max_examples=20, deadline=None)
def test_migration_preserves_rows(before, after, rows):
    if before == after:
        return
    cluster = make_cluster(before)
    for i in range(rows):
        key = f"row-{i}"
        cluster.route(key).put("T", key, {"k": key})
    migration = Migration(cluster, after, DB_KB)
    while not migration.completed:
        migration.step(1e6)
    assert cluster.total_rows() == rows
    # Every key still routes to a partition that actually has it.
    for i in range(rows):
        key = f"row-{i}"
        assert cluster.route(key).get("T", key) == {"k": key}


@given(before=sizes, after=sizes)
@settings(max_examples=20, deadline=None)
def test_back_to_back_moves(before, after):
    """A second migration after the first must still work (plan state
    is consistent between moves)."""
    if before == after:
        return
    cluster = make_cluster(before)
    first = Migration(cluster, after, DB_KB)
    while not first.completed:
        first.step(1e6)
    # Move back to where we started.
    second = Migration(cluster, before, DB_KB)
    while not second.completed:
        second.step(1e6)
    assert cluster.num_active_nodes == before
    assert len(cluster.data_fractions()) == before
