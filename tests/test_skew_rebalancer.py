"""Tests for the E-Store-style hot-spot rebalancer extension."""

import pytest

from repro.b2w.schema import b2w_schema
from repro.engine.cluster import Cluster
from repro.engine.skew import HotSpotRebalancer, SkewDetectorConfig
from repro.errors import ConfigurationError


def make_cluster(nodes=3, partitions=2, buckets=48):
    return Cluster(
        b2w_schema(), initial_nodes=nodes, partitions_per_node=partitions,
        num_buckets=buckets, max_nodes=nodes + 2,
    )


def hammer_partition(cluster, partition, accesses=5000):
    """Drive accesses at one partition directly (simulating hot keys)."""
    for _ in range(accesses):
        partition.stats.accesses += 1


def spread_accesses(cluster, per_partition=500):
    for partition in cluster.partitions():
        partition.stats.accesses += per_partition


class TestConfig:
    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            SkewDetectorConfig(imbalance_threshold=1.0)
        with pytest.raises(ConfigurationError):
            SkewDetectorConfig(min_accesses=0)
        with pytest.raises(ConfigurationError):
            SkewDetectorConfig(buckets_per_rebalance=0)


class TestDetection:
    def test_quiet_when_uniform(self):
        cluster = make_cluster()
        spread_accesses(cluster)
        rebalancer = HotSpotRebalancer(cluster)
        assert rebalancer.detect_hot_partition() is None

    def test_quiet_below_min_accesses(self):
        cluster = make_cluster()
        hammer_partition(cluster, cluster.partitions()[0], accesses=100)
        rebalancer = HotSpotRebalancer(
            cluster, SkewDetectorConfig(min_accesses=10_000)
        )
        assert rebalancer.detect_hot_partition() is None

    def test_detects_hot_partition(self):
        cluster = make_cluster()
        spread_accesses(cluster)
        hammer_partition(cluster, cluster.partitions()[3])
        rebalancer = HotSpotRebalancer(cluster)
        assert rebalancer.detect_hot_partition() == 3


class TestRebalancing:
    def test_sheds_buckets_from_hot_node(self):
        cluster = make_cluster()
        spread_accesses(cluster)
        hot = cluster.partitions()[0]
        hammer_partition(cluster, hot)
        before = cluster.data_fractions()[hot.node_id]

        rebalancer = HotSpotRebalancer(cluster)
        action = rebalancer.rebalance_once()
        assert action is not None
        assert action.source_node == hot.node_id
        assert action.target_node != hot.node_id
        assert len(action.buckets) == 2
        after = cluster.data_fractions()[hot.node_id]
        assert after < before
        # Counters reset after the action (fresh monitoring window).
        assert sum(cluster.access_counts_per_partition()) == 0

    def test_buckets_move_real_rows(self):
        cluster = make_cluster()
        from repro.b2w.schema import STOCK

        # Put rows everywhere so moves carry data.
        for i in range(400):
            key = f"sku-{i}"
            cluster.route(key).put(STOCK, key, {"sku": key, "available": 1})
        cluster.reset_stats()
        spread_accesses(cluster)
        hot = cluster.partitions()[2]
        hammer_partition(cluster, hot)
        rebalancer = HotSpotRebalancer(cluster)
        action = rebalancer.rebalance_once()
        assert action is not None
        assert action.rows_moved > 0
        assert cluster.total_rows() == 400  # nothing lost

    def test_targets_coldest_node(self):
        cluster = make_cluster(nodes=3)
        spread_accesses(cluster, per_partition=500)
        # Node 1 is busier than node 2.
        for partition in cluster.nodes[1].partitions:
            partition.stats.accesses += 2000
        hot = cluster.nodes[0].partitions[0]
        hammer_partition(cluster, hot, accesses=20_000)
        rebalancer = HotSpotRebalancer(cluster)
        action = rebalancer.rebalance_once()
        assert action.target_node == 2

    def test_noop_single_node(self):
        cluster = make_cluster(nodes=1)
        hammer_partition(cluster, cluster.partitions()[0])
        rebalancer = HotSpotRebalancer(cluster)
        assert rebalancer.rebalance_once() is None

    def test_run_until_balanced_stops(self):
        cluster = make_cluster()
        spread_accesses(cluster)
        hammer_partition(cluster, cluster.partitions()[0])
        rebalancer = HotSpotRebalancer(cluster)
        actions = rebalancer.run_until_balanced()
        # Counters reset after the first action, so the loop goes quiet.
        assert len(actions) == 1


class TestEndToEndSkewMitigation:
    def test_rebalancing_reduces_hot_node_share(self):
        """Repeated hot traffic -> repeated shedding -> load spreads."""
        cluster = make_cluster(nodes=3, partitions=2, buckets=60)
        rebalancer = HotSpotRebalancer(
            cluster, SkewDetectorConfig(buckets_per_rebalance=3)
        )
        hot = cluster.partitions()[0]
        initial_share = cluster.data_fractions()[hot.node_id]
        for _ in range(4):
            spread_accesses(cluster)
            hammer_partition(cluster, hot)
            rebalancer.rebalance_once()
        final_share = cluster.data_fractions()[hot.node_id]
        assert final_share < initial_share
        assert len(rebalancer.actions) >= 3
