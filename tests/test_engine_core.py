"""Tests for the engine's storage/routing core: hashing, tables,
partitions, nodes and cluster."""

import numpy as np
import pytest

from repro.engine.cluster import Cluster
from repro.engine.hashing import key_bytes, key_to_bucket, murmur2
from repro.engine.partition import Partition
from repro.engine.table import DatabaseSchema, TableSchema
from repro.errors import EngineError


def simple_schema() -> DatabaseSchema:
    schema = DatabaseSchema()
    schema.add(TableSchema(name="T", key_column="k", row_kb=2.0))
    return schema


class TestMurmur2:
    def test_deterministic(self):
        assert murmur2(b"hello") == murmur2(b"hello")

    def test_regression_values(self):
        # Pinned values: catches accidental algorithm changes.
        assert murmur2(b"") == 0x106E08D9
        assert murmur2(b"hello") == 0x7F1DDBBD
        assert murmur2(b"P-Store") == 0x9F9B26ED
        assert murmur2(b"a") != murmur2(b"b")

    def test_all_tail_lengths(self):
        values = {murmur2(b"x" * n) for n in range(1, 9)}
        assert len(values) == 8

    def test_32_bit_range(self):
        for key in (b"", b"abc", b"0123456789abcdef"):
            assert 0 <= murmur2(key) < 2**32

    def test_key_bytes_types(self):
        assert key_bytes("abc") == b"abc"
        assert key_bytes(b"abc") == b"abc"
        assert len(key_bytes(123)) == 8
        with pytest.raises(TypeError):
            key_bytes(1.5)  # type: ignore[arg-type]

    def test_buckets_roughly_uniform(self):
        counts = np.zeros(16)
        for i in range(16000):
            counts[key_to_bucket(f"key-{i}", 16)] += 1
        assert counts.std() / counts.mean() < 0.05

    def test_rejects_bad_bucket_count(self):
        with pytest.raises(ValueError):
            key_to_bucket("x", 0)


class TestSchema:
    def test_duplicate_table_rejected(self):
        schema = simple_schema()
        with pytest.raises(EngineError):
            schema.add(TableSchema(name="T", key_column="k"))

    def test_unknown_table_rejected(self):
        schema = simple_schema()
        with pytest.raises(EngineError):
            schema["missing"]

    def test_contains(self):
        schema = simple_schema()
        assert "T" in schema
        assert "X" not in schema

    def test_bad_table_schema(self):
        with pytest.raises(EngineError):
            TableSchema(name="", key_column="k")
        with pytest.raises(EngineError):
            TableSchema(name="T", key_column="k", row_kb=0)


class TestPartition:
    @pytest.fixture
    def partition(self) -> Partition:
        return Partition(0, 0, simple_schema())

    def test_put_get_delete(self, partition):
        partition.put("T", "a", {"k": "a", "v": 1})
        assert partition.get("T", "a") == {"k": "a", "v": 1}
        assert partition.contains("T", "a")
        assert partition.delete("T", "a")
        assert partition.get("T", "a") is None
        assert not partition.delete("T", "a")

    def test_stats_counted(self, partition):
        partition.put("T", "a", {})
        partition.get("T", "a")
        assert partition.stats.accesses == 2
        assert partition.stats.reads == 1
        assert partition.stats.writes == 1
        partition.stats.reset()
        assert partition.stats.accesses == 0

    def test_size_accounting(self, partition):
        for i in range(5):
            partition.put("T", i, {"k": i})
        assert partition.row_count() == 5
        assert partition.row_count("T") == 5
        assert partition.data_kb() == pytest.approx(10.0)

    def test_extract_and_install(self, partition):
        for i in range(4):
            partition.put("T", i, {"k": i})
        rows = partition.extract_rows("T", [0, 2, 99])
        assert set(rows) == {0, 2}
        assert partition.row_count() == 2
        other = Partition(1, 1, simple_schema())
        other.install_rows("T", rows)
        assert other.row_count() == 2

    def test_unknown_table(self, partition):
        with pytest.raises(EngineError):
            partition.get("missing", 1)


class TestCluster:
    @pytest.fixture
    def cluster(self) -> Cluster:
        return Cluster(simple_schema(), initial_nodes=2, partitions_per_node=3,
                       num_buckets=60, max_nodes=5)

    def test_topology(self, cluster):
        assert cluster.num_active_nodes == 2
        assert len(cluster.partitions()) == 6
        assert len(cluster.partitions(only_active=False)) == 15

    def test_routing_deterministic(self, cluster):
        partition = cluster.route("some-key")
        assert partition is cluster.route("some-key")
        node = cluster.node_of_bucket(cluster.bucket_of("some-key"))
        assert partition.node_id == node

    def test_routing_respects_plan(self, cluster):
        for key in ("a", "b", "c", "d"):
            bucket = cluster.bucket_of(key)
            expected_node = cluster.plan.node_of(bucket)
            assert cluster.route(key).node_id == expected_node

    def test_inactive_node_routing_rejected(self, cluster):
        cluster.set_active(0, False)
        bucket = next(
            b for b in range(cluster.num_buckets) if cluster.plan.node_of(b) == 0
        )
        with pytest.raises(EngineError):
            cluster.partition_of_bucket(bucket)

    def test_move_bucket_moves_rows(self, cluster):
        cluster.set_active(2, True)
        key = "customer-42"
        cluster.route(key).put("T", key, {"k": key})
        bucket = cluster.bucket_of(key)
        moved = cluster.move_bucket(bucket, 2)
        assert moved == 1
        assert cluster.route(key).node_id == 2
        assert cluster.route(key).get("T", key) == {"k": key}

    def test_move_bucket_to_inactive_rejected(self, cluster):
        with pytest.raises(EngineError):
            cluster.move_bucket(0, 4)

    def test_move_bucket_noop(self, cluster):
        bucket = 0
        owner = cluster.plan.node_of(bucket)
        assert cluster.move_bucket(bucket, owner) == 0

    def test_data_fractions_track_moves(self, cluster):
        cluster.set_active(2, True)
        start = cluster.data_fractions()
        assert sum(start.values()) == pytest.approx(1.0)
        moved = cluster.buckets_of_node0 = [
            b for b in range(10) if cluster.plan.node_of(b) == 0
        ]
        for bucket in moved:
            cluster.move_bucket(bucket, 2)
        fractions = cluster.data_fractions()
        assert fractions.get(2, 0) == pytest.approx(len(moved) / 60)

    def test_node_weights_match_fractions(self, cluster):
        weights = cluster.node_weights()
        fractions = cluster.data_fractions()
        for node, fraction in fractions.items():
            assert weights[node] == pytest.approx(fraction)
        assert sum(weights) == pytest.approx(1.0)

    def test_compact_plan(self, cluster):
        cluster.set_active(2, True)
        # Move everything off node 1 onto node 2.
        for bucket in range(cluster.num_buckets):
            if cluster.plan.node_of(bucket) == 1:
                cluster.move_bucket(bucket, 2)
        # Buckets now live on nodes 0 and 2: compacting to 2 must fail.
        with pytest.raises(EngineError):
            cluster.compact_plan(2)
        cluster.compact_plan(3)
        assert cluster.plan.num_nodes == 3

    def test_rejects_bad_construction(self):
        with pytest.raises(EngineError):
            Cluster(simple_schema(), initial_nodes=0)
        with pytest.raises(EngineError):
            Cluster(simple_schema(), initial_nodes=5, max_nodes=3)
        with pytest.raises(EngineError):
            Cluster(simple_schema(), partitions_per_node=0)
