"""Tests for bipartite edge coloring (the phase-3 scheduler's engine)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.edge_coloring import bipartite_edge_coloring, validate_edge_coloring
from repro.errors import ConfigurationError


def max_degree(edges):
    left, right = {}, {}
    for u, v in edges:
        left[u] = left.get(u, 0) + 1
        right[v] = right.get(v, 0) + 1
    return max(list(left.values()) + list(right.values()), default=0)


class TestBasics:
    def test_empty(self):
        assert bipartite_edge_coloring([]) == []

    def test_single_edge(self):
        assert bipartite_edge_coloring([(0, 0)]) == [0]

    def test_star_needs_degree_colors(self):
        edges = [(0, v) for v in range(5)]
        colors = bipartite_edge_coloring(edges)
        assert sorted(colors) == [0, 1, 2, 3, 4]

    def test_complete_bipartite(self):
        edges = [(u, v) for u in range(4) for v in range(4)]
        colors = bipartite_edge_coloring(edges)
        validate_edge_coloring(edges, colors)
        assert max(colors) + 1 == 4

    def test_parallel_edges(self):
        edges = [(0, 0), (0, 0), (0, 0)]
        colors = bipartite_edge_coloring(edges)
        assert sorted(colors) == [0, 1, 2]

    def test_left_right_namespaces_distinct(self):
        # The same label on both sides denotes different vertices.
        edges = [("x", "x"), ("x", "y"), ("y", "x")]
        colors = bipartite_edge_coloring(edges)
        validate_edge_coloring(edges, colors)
        assert max(colors) + 1 == 2


class TestValidator:
    def test_detects_conflicts(self):
        edges = [(0, 0), (0, 1)]
        with pytest.raises(ConfigurationError):
            validate_edge_coloring(edges, [0, 0])

    def test_detects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            validate_edge_coloring([(0, 0)], [])


@st.composite
def bipartite_graphs(draw):
    num_left = draw(st.integers(1, 8))
    num_right = draw(st.integers(1, 8))
    possible = [(u, v) for u in range(num_left) for v in range(num_right)]
    return draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=40)
    )


class TestProperties:
    @given(bipartite_graphs())
    @settings(max_examples=150, deadline=None)
    def test_coloring_is_proper_and_optimal(self, edges):
        colors = bipartite_edge_coloring(edges)
        validate_edge_coloring(edges, colors)
        # König: a bipartite multigraph is max-degree edge-chromatic.
        assert max(colors) + 1 <= max_degree(edges)
