"""Failure-injection tests: the control loop must survive bad inputs.

A production controller cannot crash because the forecasting model
diverged or a measurement went missing; these tests inject broken
predictors and malformed data and assert graceful degradation (roughly
reactive behaviour), never silent nonsense.
"""

import numpy as np
import pytest

from repro.core.controller import PredictiveController
from repro.core.params import SystemParameters
from repro.core.policy import PredictivePolicy
from repro.engine.simulator import EngineConfig, EngineSimulator
from repro.errors import ConfigurationError
from repro.prediction.base import Predictor
from repro.workloads.trace import LoadTrace

PARAMS = SystemParameters(interval_seconds=300.0, partitions_per_node=6)


class BrokenPredictor(Predictor):
    """Returns pathological forecasts on demand."""

    min_history = 1

    def __init__(self, mode: str) -> None:
        self.mode = mode

    def fit(self, training):
        return self

    def predict(self, history, horizon):
        if self.mode == "nan":
            return np.full(horizon, np.nan)
        if self.mode == "negative":
            return np.full(horizon, -500.0)
        if self.mode == "inf":
            return np.full(horizon, np.inf)
        if self.mode == "huge":
            return np.full(horizon, 1e18)
        raise AssertionError(self.mode)


class TestPolicySanitization:
    def test_nan_forecast_degrades_to_hold(self):
        policy = PredictivePolicy(PARAMS, max_machines=10)
        load = np.full(13, np.nan)
        load[0] = 1.5 * PARAMS.q
        decision = policy.decide(load, 2)
        # NaNs replaced with the measured load -> plateau -> hold.
        assert decision.target is None

    def test_negative_forecast_degrades_to_hold(self):
        policy = PredictivePolicy(PARAMS, max_machines=10)
        load = np.full(13, -100.0)
        load[0] = 1.5 * PARAMS.q
        assert policy.decide(load, 2).target is None

    def test_partial_nan_keeps_good_entries(self):
        policy = PredictivePolicy(PARAMS, max_machines=10)
        load = np.full(13, 1.2 * PARAMS.q)
        load[3] = np.nan
        load[8] = 3.5 * PARAMS.q  # a real predicted rise survives
        decision = policy.decide(load, 2)
        assert decision.planned  # the rise still forces planning

    def test_infinite_forecast_caps_at_max_machines(self):
        policy = PredictivePolicy(PARAMS, max_machines=6)
        load = np.full(13, np.inf)
        load[0] = 1.5 * PARAMS.q
        decision = policy.decide(load, 2)
        # inf entries are sanitized to the measured load: hold.
        assert decision.target is None

    def test_huge_but_finite_forecast_falls_back(self):
        policy = PredictivePolicy(PARAMS, max_machines=6)
        load = np.full(13, 1e18)
        load[0] = 1.5 * PARAMS.q
        decision = policy.decide(load, 2)
        assert decision.fallback
        assert decision.target == 6  # clamped to the cluster cap

    def test_bad_measurement_is_an_error(self):
        policy = PredictivePolicy(PARAMS, max_machines=10)
        load = np.full(13, 1.0 * PARAMS.q)
        load[0] = np.nan
        with pytest.raises(ConfigurationError):
            policy.decide(load, 2)


class TestControllerWithBrokenPredictor:
    @pytest.mark.parametrize("mode", ["nan", "negative", "inf", "huge"])
    def test_run_survives(self, mode):
        params = SystemParameters(interval_seconds=60.0, partitions_per_node=6)
        controller = PredictiveController(
            params,
            BrokenPredictor(mode),
            training_history=[100.0],
            measurement_slot_seconds=6.0,
            horizon=10,
            max_machines=4,
        )
        sim = EngineSimulator(EngineConfig(max_nodes=4), initial_nodes=2)
        trace = LoadTrace(np.full(50, 300.0 * 6), slot_seconds=6.0)
        result = sim.run(trace, controller=controller)  # must not raise
        assert len(result.time) == 300
        assert sim.machines_allocated >= 1
