"""Tests for all 19 B2W benchmark operations (Table 4)."""

import pytest

from repro.b2w import schema as s
from repro.b2w.procedures import PROCEDURES, build_registry
from repro.b2w.schema import b2w_schema
from repro.engine.cluster import Cluster
from repro.engine.executor import Executor
from repro.engine.transaction import Transaction, TxnStatus
from repro.errors import EngineError


@pytest.fixture
def executor() -> Executor:
    cluster = Cluster(b2w_schema(), initial_nodes=2, partitions_per_node=3,
                      num_buckets=64, max_nodes=4)
    return Executor(cluster, build_registry())


def seed_stock(executor: Executor, sku: str = "sku-1", available: int = 10) -> None:
    partition = executor.cluster.route(sku)
    partition.put(
        s.STOCK, sku, {"sku": sku, "available": available, "reserved": 0, "purchased": 0}
    )


def run(executor, procedure, key, **params):
    return executor.execute(Transaction(procedure, key, params))


class TestRegistry:
    def test_all_nineteen_operations_registered(self):
        registry = build_registry()
        assert len(registry.names()) == 19
        for name in (
            "AddLineToCart", "DeleteLineFromCart", "GetCart", "DeleteCart",
            "GetStock", "GetStockQuantity", "ReserveStock", "PurchaseStock",
            "CancelStockReservation", "CreateStockTransaction", "ReserveCart",
            "GetStockTransaction", "UpdateStockTransaction", "CreateCheckout",
            "CreateCheckoutPayment", "AddLineToCheckout", "DeleteLineFromCheckout",
            "GetCheckout", "DeleteCheckout",
        ):
            assert name in registry

    def test_duplicate_registration_rejected(self):
        registry = build_registry()
        with pytest.raises(EngineError):
            registry.register(PROCEDURES["GetCart"])

    def test_unknown_procedure_rejected(self, executor):
        with pytest.raises(EngineError):
            run(executor, "NoSuchProcedure", "k")


class TestCartFlow:
    def test_add_line_creates_cart(self, executor):
        result = run(executor, "AddLineToCart", "cart-1", sku="sku-1", price=5.0)
        assert result.committed
        assert result.value["lines"]["sku-1"]["quantity"] == 1
        assert result.value["total"] == pytest.approx(5.0)

    def test_add_line_accumulates(self, executor):
        run(executor, "AddLineToCart", "cart-1", sku="sku-1", price=5.0)
        result = run(executor, "AddLineToCart", "cart-1", sku="sku-1", price=5.0,
                     quantity=2)
        assert result.value["lines"]["sku-1"]["quantity"] == 3
        assert result.value["total"] == pytest.approx(15.0)

    def test_get_cart(self, executor):
        run(executor, "AddLineToCart", "cart-1", sku="sku-1")
        result = run(executor, "GetCart", "cart-1")
        assert result.committed
        assert result.value["cart_id"] == "cart-1"

    def test_get_missing_cart_aborts(self, executor):
        result = run(executor, "GetCart", "nope")
        assert result.status is TxnStatus.ABORTED
        assert "does not exist" in result.abort_reason

    def test_delete_line(self, executor):
        run(executor, "AddLineToCart", "cart-1", sku="sku-1", price=4.0)
        run(executor, "AddLineToCart", "cart-1", sku="sku-2", price=6.0)
        result = run(executor, "DeleteLineFromCart", "cart-1", sku="sku-1")
        assert result.committed
        assert "sku-1" not in result.value["lines"]
        assert result.value["total"] == pytest.approx(6.0)

    def test_delete_missing_line_aborts(self, executor):
        run(executor, "AddLineToCart", "cart-1", sku="sku-1")
        result = run(executor, "DeleteLineFromCart", "cart-1", sku="zzz")
        assert result.status is TxnStatus.ABORTED

    def test_delete_cart(self, executor):
        run(executor, "AddLineToCart", "cart-1", sku="sku-1")
        assert run(executor, "DeleteCart", "cart-1").committed
        assert run(executor, "DeleteCart", "cart-1").status is TxnStatus.ABORTED

    def test_reserve_cart(self, executor):
        run(executor, "AddLineToCart", "cart-1", sku="sku-1")
        result = run(executor, "ReserveCart", "cart-1")
        assert result.value["status"] == s.CART_STATUS_RESERVED


class TestStockFlow:
    def test_get_stock_and_quantity(self, executor):
        seed_stock(executor, available=7)
        assert run(executor, "GetStock", "sku-1").value["available"] == 7
        assert run(executor, "GetStockQuantity", "sku-1").value == 7

    def test_missing_sku_aborts(self, executor):
        for op in ("GetStock", "GetStockQuantity", "ReserveStock",
                   "PurchaseStock", "CancelStockReservation"):
            assert run(executor, op, "missing").status is TxnStatus.ABORTED

    def test_reserve_then_purchase(self, executor):
        seed_stock(executor, available=5)
        reserved = run(executor, "ReserveStock", "sku-1", quantity=2)
        assert reserved.value == {
            "sku": "sku-1", "available": 3, "reserved": 2, "purchased": 0
        }
        bought = run(executor, "PurchaseStock", "sku-1", quantity=2)
        assert bought.value["purchased"] == 2
        assert bought.value["reserved"] == 0

    def test_reserve_out_of_stock_aborts(self, executor):
        seed_stock(executor, available=1)
        result = run(executor, "ReserveStock", "sku-1", quantity=2)
        assert result.status is TxnStatus.ABORTED
        assert "available" in result.abort_reason

    def test_purchase_without_reservation_aborts(self, executor):
        seed_stock(executor)
        assert run(executor, "PurchaseStock", "sku-1").status is TxnStatus.ABORTED

    def test_cancel_reservation_restores(self, executor):
        seed_stock(executor, available=4)
        run(executor, "ReserveStock", "sku-1", quantity=3)
        result = run(executor, "CancelStockReservation", "sku-1", quantity=3)
        assert result.value["available"] == 4
        assert result.value["reserved"] == 0

    def test_cancel_without_reservation_aborts(self, executor):
        seed_stock(executor)
        result = run(executor, "CancelStockReservation", "sku-1")
        assert result.status is TxnStatus.ABORTED


class TestStockTransactions:
    def test_create_get_update(self, executor):
        created = run(executor, "CreateStockTransaction", "stxn-1",
                      sku="sku-1", cart_id="cart-1")
        assert created.value["status"] == s.STOCK_TXN_RESERVED
        fetched = run(executor, "GetStockTransaction", "stxn-1")
        assert fetched.value["sku"] == "sku-1"
        updated = run(executor, "UpdateStockTransaction", "stxn-1",
                      status=s.STOCK_TXN_PURCHASED)
        assert updated.value["status"] == s.STOCK_TXN_PURCHASED

    def test_duplicate_create_aborts(self, executor):
        run(executor, "CreateStockTransaction", "stxn-1", sku="sku-1")
        result = run(executor, "CreateStockTransaction", "stxn-1", sku="sku-1")
        assert result.status is TxnStatus.ABORTED

    def test_update_invalid_status_aborts(self, executor):
        run(executor, "CreateStockTransaction", "stxn-1", sku="sku-1")
        result = run(executor, "UpdateStockTransaction", "stxn-1", status="BOGUS")
        assert result.status is TxnStatus.ABORTED

    def test_get_missing_aborts(self, executor):
        assert run(executor, "GetStockTransaction", "zzz").status is TxnStatus.ABORTED


class TestCheckoutFlow:
    def test_full_checkout(self, executor):
        run(executor, "CreateCheckout", "cart-1", cart_id="cart-1")
        run(executor, "AddLineToCheckout", "cart-1", sku="sku-1", price=9.0)
        fetched = run(executor, "GetCheckout", "cart-1")
        assert fetched.value["total"] == pytest.approx(9.0)
        paid = run(executor, "CreateCheckoutPayment", "cart-1", method="pix")
        assert paid.value["status"] == s.CHECKOUT_STATUS_PAID
        assert paid.value["payment"]["method"] == "pix"

    def test_duplicate_checkout_aborts(self, executor):
        run(executor, "CreateCheckout", "cart-1")
        assert run(executor, "CreateCheckout", "cart-1").status is TxnStatus.ABORTED

    def test_delete_line_from_checkout(self, executor):
        run(executor, "CreateCheckout", "cart-1")
        run(executor, "AddLineToCheckout", "cart-1", sku="sku-1", price=3.0)
        result = run(executor, "DeleteLineFromCheckout", "cart-1", sku="sku-1")
        assert result.value["total"] == pytest.approx(0.0)
        missing = run(executor, "DeleteLineFromCheckout", "cart-1", sku="sku-1")
        assert missing.status is TxnStatus.ABORTED

    def test_delete_checkout(self, executor):
        run(executor, "CreateCheckout", "cart-1")
        assert run(executor, "DeleteCheckout", "cart-1").committed
        assert run(executor, "DeleteCheckout", "cart-1").status is TxnStatus.ABORTED

    def test_operations_on_missing_checkout_abort(self, executor):
        for op in ("GetCheckout", "CreateCheckoutPayment", "AddLineToCheckout"):
            assert run(executor, op, "zzz", sku="s").status is TxnStatus.ABORTED


class TestExecutorStats:
    def test_stats_counted(self, executor):
        seed_stock(executor)
        run(executor, "GetStock", "sku-1")
        run(executor, "GetStock", "missing")
        assert executor.stats.executed == 2
        assert executor.stats.committed == 1
        assert executor.stats.aborted == 1
        assert executor.stats.by_procedure["GetStock"] == 2

    def test_single_partition_execution(self, executor):
        seed_stock(executor)
        result = run(executor, "GetStock", "sku-1")
        expected = executor.cluster.route("sku-1").partition_id
        assert result.partition_id == expected
