"""Tests for the time-stepped engine simulator."""

import numpy as np
import pytest

from repro.engine.monitor import LoadMonitor
from repro.engine.simulator import EngineConfig, EngineSimulator, SkewEvent
from repro.errors import ConfigurationError, MigrationError
from repro.workloads.trace import LoadTrace


def flat_trace(rate: float, seconds: int, slot: float = 6.0) -> LoadTrace:
    slots = int(seconds / slot)
    return LoadTrace(np.full(slots, rate * slot), slot_seconds=slot)


class TestEngineConfig:
    def test_partition_service_rate(self):
        config = EngineConfig()
        assert config.partition_service_rate == pytest.approx(438.0 / 6)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(partitions_per_node=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(saturation_rate_per_node=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(dt_seconds=0)


class TestSteadyState:
    def test_latency_matches_queue_model(self):
        config = EngineConfig(max_nodes=4)
        sim = EngineSimulator(config, initial_nodes=2)
        result = sim.run(flat_trace(400.0, 120))
        mu = config.partition_service_rate
        lam = 400.0 / 12  # per partition
        expected_p50 = config.base_service_ms + 1000 * np.log(2) / (mu - lam)
        assert result.p50_ms[-1] == pytest.approx(expected_p50, rel=0.01)
        assert result.served[-1] == pytest.approx(400.0, rel=0.01)

    def test_overload_collapses(self):
        config = EngineConfig(max_nodes=2)
        sim = EngineSimulator(config, initial_nodes=1)
        result = sim.run(flat_trace(600.0, 120))
        assert result.served[-1] == pytest.approx(438.0, rel=0.01)
        assert result.p99_ms[-1] > 1000.0
        # Bounded by the closed-loop queue cap.
        assert result.p50_ms.max() < 1000.0 * (config.max_queue_seconds + 5)

    def test_machines_recorded(self):
        sim = EngineSimulator(EngineConfig(max_nodes=4), initial_nodes=3)
        result = sim.run(flat_trace(100.0, 30))
        assert np.all(result.machines == 3)


class TestSkew:
    def test_skew_event_raises_latency(self):
        config = EngineConfig(max_nodes=2)
        base = EngineSimulator(config, initial_nodes=2).run(flat_trace(700.0, 60))
        skewed_sim = EngineSimulator(config, initial_nodes=2)
        skewed_sim.skew_events.append(
            SkewEvent(start_seconds=20, end_seconds=40, partition_index=0, factor=4.0)
        )
        skewed = skewed_sim.run(flat_trace(700.0, 60))
        assert skewed.p99_ms.max() > 1.5 * base.p99_ms.max()


class TestReconfiguration:
    def test_move_during_run(self):
        config = EngineConfig(max_nodes=4)
        sim = EngineSimulator(config, initial_nodes=2)
        sim.start_move(4)
        duration = int(sim.migration.total_seconds) + 30
        result = sim.run(flat_trace(500.0, duration))
        assert sim.machines_allocated == 4
        assert sim.migration is None
        assert result.reconfiguring[:10].all()
        assert not result.reconfiguring[-5:].any()
        fractions = sim.cluster.data_fractions()
        assert len(fractions) == 4

    def test_cannot_start_two_moves(self):
        sim = EngineSimulator(EngineConfig(max_nodes=4), initial_nodes=2)
        sim.start_move(4)
        with pytest.raises(MigrationError):
            sim.start_move(3)
        assert sim.moves_started == 1

    def test_boost_override(self):
        sim = EngineSimulator(EngineConfig(max_nodes=4), initial_nodes=2)
        migration = sim.start_move(4, boost=8.0)
        assert migration.config.boost == 8.0
        # The simulator's default config is untouched.
        assert sim.migration_config.boost == 1.0


class TestRun:
    def test_slot_alignment_enforced(self):
        sim = EngineSimulator(EngineConfig(dt_seconds=1.0), initial_nodes=1)
        trace = LoadTrace(np.ones(5), slot_seconds=2.5)
        with pytest.raises(ConfigurationError):
            sim.run(trace)

    def test_controller_called_per_slot(self):
        calls = []

        class Recorder:
            def on_slot(self, sim, slot_index, measured):
                calls.append((slot_index, measured))

        sim = EngineSimulator(EngineConfig(max_nodes=2), initial_nodes=1)
        sim.run(flat_trace(100.0, 30), controller=Recorder())
        assert len(calls) == 5
        assert calls[0][0] == 0
        assert calls[0][1] == pytest.approx(600.0, rel=0.05)

    def test_monitor_receives_measurements(self):
        monitor = LoadMonitor(slot_seconds=6.0)
        sim = EngineSimulator(EngineConfig(max_nodes=2), initial_nodes=1)
        sim.run(flat_trace(100.0, 30), monitor=monitor)
        history = monitor.history()
        assert len(history) == 5
        assert history[-1] == pytest.approx(600.0, rel=0.05)


class TestRunResult:
    @pytest.fixture
    def result(self):
        sim = EngineSimulator(EngineConfig(max_nodes=2), initial_nodes=1)
        return sim.run(flat_trace(600.0, 60))

    def test_sla_violations(self, result):
        assert result.sla_violations("p99") > 0
        assert result.sla_violations("p99", threshold_ms=1e9) == 0

    def test_cost_and_average(self, result):
        assert result.average_machines() == pytest.approx(1.0)
        assert result.total_cost() == pytest.approx(60.0)

    def test_top_percent(self, result):
        top = result.top_percent_latencies("p99", percent=10.0)
        assert len(top) == 6
        assert np.all(np.diff(top) >= 0)

    def test_summary_keys(self, result):
        summary = result.summary()
        assert {"violations_p50", "violations_p95", "violations_p99",
                "avg_machines", "max_p99_ms"} <= set(summary)


class TestLoadMonitor:
    def test_slot_accumulation(self):
        monitor = LoadMonitor(slot_seconds=10.0)
        assert monitor.record(50.0, dt=5.0) == 0
        assert monitor.record(50.0, dt=5.0) == 1
        assert monitor.history().tolist() == [100.0]

    def test_spanning_slots(self):
        monitor = LoadMonitor(slot_seconds=10.0)
        closed = monitor.record(300.0, dt=30.0)
        assert closed == 3
        assert monitor.history().tolist() == [100.0, 100.0, 100.0]

    def test_seed_history(self):
        monitor = LoadMonitor(slot_seconds=10.0, seed_history=[1.0, 2.0])
        assert monitor.num_live_slots == 0
        monitor.record(100.0, dt=10.0)
        assert monitor.num_live_slots == 1
        assert monitor.last(2).tolist() == [2.0, 100.0]

    def test_current_rate(self):
        monitor = LoadMonitor(slot_seconds=10.0)
        monitor.record(50.0, dt=5.0)
        assert monitor.current_rate() == pytest.approx(10.0)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            LoadMonitor(slot_seconds=0)
        monitor = LoadMonitor(slot_seconds=10.0)
        with pytest.raises(ConfigurationError):
            monitor.record(-1.0, dt=1.0)
