"""Deeper mathematical tests of the SPAR model (Equation 8).

These verify SPAR's *statistical* behaviour against processes whose
optimal forecasts are known in closed form, not just its plumbing.
"""

import numpy as np

from repro.prediction.naive import SeasonalNaivePredictor
from repro.prediction.rolling import rolling_forecast
from repro.prediction.spar import SPARPredictor

PERIOD = 48


def periodic_plus_ar1(
    days: int, rho: float, sigma: float, seed: int = 0
) -> np.ndarray:
    """y_t = s_t * exp(e_t), e AR(1): the B2W generator's structure."""
    rng = np.random.default_rng(seed)
    profile = 100.0 + 60.0 * np.sin(2 * np.pi * np.arange(PERIOD) / PERIOD)
    seasonal = np.tile(profile, days)
    n = len(seasonal)
    e = np.zeros(n)
    scale = np.sqrt(1 - rho**2) * sigma
    for t in range(1, n):
        e[t] = rho * e[t - 1] + scale * rng.normal()
    return seasonal * np.exp(e)


class TestForecastQuality:
    def test_beats_seasonal_naive_on_ar_noise(self):
        """With persistent noise, SPAR's recent-offset terms must beat
        the pure same-time-yesterday rule at short horizons."""
        series = periodic_plus_ar1(days=30, rho=0.9, sigma=0.08)
        train_len = 24 * PERIOD
        spar = SPARPredictor(
            period=PERIOD, n_periods=5, n_recent=6, max_horizon=4
        ).fit(series[:train_len])
        naive = SeasonalNaivePredictor(period=PERIOD)
        spar_mre = rolling_forecast(spar, series, 1, eval_start=train_len).mre_pct
        naive_mre = rolling_forecast(naive, series, 1, eval_start=train_len).mre_pct
        assert spar_mre < 0.8 * naive_mre

    def test_error_grows_with_horizon_under_ar_noise(self):
        series = periodic_plus_ar1(days=30, rho=0.9, sigma=0.08, seed=3)
        train_len = 24 * PERIOD
        spar = SPARPredictor(
            period=PERIOD, n_periods=5, n_recent=6, max_horizon=8
        ).fit(series[:train_len])
        errors = [
            rolling_forecast(spar, series, tau, eval_start=train_len).mre_pct
            for tau in (1, 4, 8)
        ]
        assert errors[0] < errors[1] < errors[2]

    def test_error_bounded_by_noise_floor(self):
        """At long horizons the AR noise is unforecastable; SPAR's error
        should approach (and not wildly exceed) the stationary noise."""
        sigma = 0.10
        series = periodic_plus_ar1(days=40, rho=0.85, sigma=sigma, seed=7)
        train_len = 30 * PERIOD
        spar = SPARPredictor(
            period=PERIOD, n_periods=5, n_recent=6, max_horizon=12
        ).fit(series[:train_len])
        result = rolling_forecast(spar, series, 12, eval_start=train_len)
        # Mean |log-noise| of a N(0, sigma) is sigma * sqrt(2/pi) ~ 0.08;
        # allow generous slack for seasonal estimation error.
        assert result.mre_pct / 100.0 < 3.0 * sigma

    def test_white_noise_long_horizon_matches_seasonal(self):
        """With white (memoryless) noise, the recent offsets carry no
        information, so SPAR should converge to the seasonal mean."""
        rng = np.random.default_rng(11)
        profile = 100.0 + 60.0 * np.sin(2 * np.pi * np.arange(PERIOD) / PERIOD)
        series = np.tile(profile, 30) * np.exp(rng.normal(0, 0.05, 30 * PERIOD))
        train_len = 24 * PERIOD
        spar = SPARPredictor(
            period=PERIOD, n_periods=5, n_recent=6, max_horizon=8
        ).fit(series[:train_len])
        coef = spar.coefficients(8)
        # Recent-offset weights are near zero at a long horizon.
        assert np.abs(coef[5:]).sum() < 0.3

    def test_recent_coefficients_matter_at_short_horizon(self):
        series = periodic_plus_ar1(days=30, rho=0.95, sigma=0.10, seed=9)
        spar = SPARPredictor(
            period=PERIOD, n_periods=5, n_recent=6, max_horizon=8
        ).fit(series)
        short = np.abs(spar.coefficients(1)[5:]).sum()
        long = np.abs(spar.coefficients(8)[5:]).sum()
        assert short > long  # persistence decays with horizon


class TestScaleInvariance:
    def test_forecasts_scale_linearly(self):
        """SPAR is linear: scaling the workload scales the forecasts."""
        series = periodic_plus_ar1(days=20, rho=0.9, sigma=0.05, seed=5)
        model_a = SPARPredictor(
            period=PERIOD, n_periods=4, n_recent=4, max_horizon=4
        ).fit(series)
        model_b = SPARPredictor(
            period=PERIOD, n_periods=4, n_recent=4, max_horizon=4
        ).fit(series * 7.0)
        history = series[: 15 * PERIOD]
        a = model_a.predict(history, 4)
        b = model_b.predict(history * 7.0, 4)
        assert np.allclose(b, 7.0 * a, rtol=1e-6)
