"""Property-based tests for the capacity simulator.

Whatever moves a (possibly erratic) strategy requests, the simulator's
accounting invariants must hold: allocation bounded, effective capacity
bounded by the move endpoints, cost equal to the allocation integral,
and the reconfiguration flag consistent with the moves executed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import SystemParameters
from repro.simulation.capacity_sim import CapacitySimulator
from repro.strategies.base import AllocationStrategy, SimState
from repro.workloads.trace import LoadTrace

PARAMS = SystemParameters(interval_seconds=300.0, partitions_per_node=6)
MAX_MACHINES = 12


class ScriptedStrategy(AllocationStrategy):
    """Replays an arbitrary list of (interval, target) requests."""

    name = "scripted"

    def __init__(self, script, initial):
        self.script = dict(script)
        self.initial = initial

    def initial_machines(self, first_load_rate: float) -> int:
        return self.initial

    def decide(self, state: SimState):
        return self.script.get(state.interval)


@st.composite
def scripted_runs(draw):
    intervals = draw(st.integers(10, 60))
    initial = draw(st.integers(1, MAX_MACHINES))
    n_requests = draw(st.integers(0, 8))
    script = {
        draw(st.integers(0, intervals - 1)): draw(st.integers(1, MAX_MACHINES))
        for _ in range(n_requests)
    }
    load_machines = draw(
        st.lists(st.floats(0.1, 10.0), min_size=intervals, max_size=intervals)
    )
    return intervals, initial, script, np.array(load_machines)


@given(scripted_runs())
@settings(max_examples=100, deadline=None)
def test_accounting_invariants(run_spec):
    intervals, initial, script, load_machines = run_spec
    trace = LoadTrace(
        load_machines * PARAMS.q * PARAMS.interval_seconds,
        slot_seconds=PARAMS.interval_seconds,
    )
    simulator = CapacitySimulator(PARAMS, max_machines=MAX_MACHINES)
    result = simulator.run(trace, ScriptedStrategy(script, initial))

    # Allocation bounded by [1, max_machines].
    assert np.all(result.allocated >= 1.0 - 1e-9)
    assert np.all(result.allocated <= MAX_MACHINES + 1e-9)
    # Effective machine-equivalents bounded the same way.
    assert np.all(result.effective_machines >= 1.0 - 1e-9)
    assert np.all(result.effective_machines <= MAX_MACHINES + 1e-9)
    # Cost is exactly the allocation integral.
    assert result.cost == pytest.approx(float(result.allocated.sum()))
    # Target machines change only across reconfigurations.
    changes = np.flatnonzero(np.diff(result.target_machines))
    for idx in changes:
        assert result.reconfiguring[idx] or result.reconfiguring[idx + 1]
    # Outside reconfigurations, effective == allocated == target.
    steady = ~result.reconfiguring
    assert np.allclose(
        result.effective_machines[steady], result.allocated[steady]
    )
    assert np.allclose(result.allocated[steady], result.target_machines[steady])


@given(scripted_runs())
@settings(max_examples=50, deadline=None)
def test_violation_counting_consistent(run_spec):
    intervals, initial, script, load_machines = run_spec
    trace = LoadTrace(
        load_machines * PARAMS.q * PARAMS.interval_seconds,
        slot_seconds=PARAMS.interval_seconds,
    )
    simulator = CapacitySimulator(PARAMS, max_machines=MAX_MACHINES)
    result = simulator.run(trace, ScriptedStrategy(script, initial))
    mask = result.insufficient_mask()
    assert result.pct_time_insufficient == pytest.approx(100.0 * mask.mean())
    # A violation requires peak load above the Q_hat capacity.
    over = result.peak_load_rate > result.effective_machines * PARAMS.q_max
    assert np.array_equal(mask, over | mask)  # mask subset of 'over' + tol
