"""Public-API contract tests.

Pin the package's re-exports so downstream users' imports never break
silently, and verify every ``__all__`` entry actually resolves.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.prediction",
    "repro.workloads",
    "repro.engine",
    "repro.b2w",
    "repro.strategies",
    "repro.simulation",
    "repro.metrics",
]


class TestAllResolvable:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_exist(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_no_duplicate_exports(self, package):
        module = importlib.import_module(package)
        exported = list(getattr(module, "__all__", []))
        assert len(exported) == len(set(exported))


class TestHeadlineImports:
    def test_quickstart_surface(self):
        from repro import (
            LoadTrace,
            Planner,
            SPARPredictor,
            SystemParameters,
            build_move_schedule,
            generate_b2w_trace,
        )

        assert callable(build_move_schedule)
        assert callable(generate_b2w_trace)
        assert Planner and SPARPredictor and SystemParameters and LoadTrace

    def test_version_present(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_error_hierarchy(self):
        import repro

        for name in (
            "ConfigurationError",
            "InfeasiblePlanError",
            "PredictionError",
            "MigrationError",
            "EngineError",
            "TransactionAborted",
        ):
            error_cls = getattr(repro, name)
            assert issubclass(error_cls, repro.ReproError)

    def test_paper_constants_surface(self):
        from repro import PAPER_PARAMETERS

        assert PAPER_PARAMETERS.q == pytest.approx(284.7)
        assert PAPER_PARAMETERS.d_seconds == 4646.0

    def test_extension_surfaces(self):
        from repro.engine import HotSpotRebalancer, RangePartitioner
        from repro.prediction import OnlinePredictor
        from repro.strategies import ManualOverrideStrategy, ProvisioningWindow

        assert HotSpotRebalancer and RangePartitioner
        assert OnlinePredictor and ManualOverrideStrategy and ProvisioningWindow
