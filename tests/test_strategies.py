"""Tests for the allocation strategies and the predictive policy."""

import numpy as np
import pytest

from repro.core.params import SystemParameters
from repro.core.policy import PredictivePolicy
from repro.errors import ConfigurationError
from repro.prediction.oracle import OraclePredictor
from repro.strategies import (
    PStoreStrategy,
    ReactiveStrategy,
    SimState,
    SimpleStrategy,
    StaticStrategy,
)
from repro.workloads.trace import LoadTrace

PARAMS = SystemParameters(interval_seconds=300.0, partitions_per_node=6)


def make_state(interval, machines, load_rate, history=None, slot=300.0):
    if history is None:
        history = np.full(interval + 1, load_rate)
    return SimState(
        interval=interval,
        machines=machines,
        load_rate=load_rate,
        history_rates=np.asarray(history, dtype=float),
        slot_seconds=slot,
    )


class TestStatic:
    def test_never_moves(self):
        strategy = StaticStrategy(7)
        strategy.reset(PARAMS, 10)
        assert strategy.initial_machines(1.0) == 7
        assert strategy.decide(make_state(5, 7, 1e9)) is None

    def test_rejects_bad_count(self):
        with pytest.raises(ConfigurationError):
            StaticStrategy(0)


class TestSimple:
    def test_day_night_switching(self):
        strategy = SimpleStrategy(8, 2, morning_hour=7, night_hour=23)
        strategy.reset(PARAMS, 10)
        intervals_per_hour = 12
        night = make_state(3 * intervals_per_hour, 2, 100.0)  # 03:00
        assert strategy.decide(night) is None
        morning = make_state(8 * intervals_per_hour, 2, 100.0)  # 08:00
        assert strategy.decide(morning) == 8
        evening = make_state(23 * intervals_per_hour + 1, 8, 100.0)  # 23:05
        assert strategy.decide(evening) == 2

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            SimpleStrategy(2, 5)
        with pytest.raises(ConfigurationError):
            SimpleStrategy(5, 0)
        with pytest.raises(ConfigurationError):
            SimpleStrategy(5, 2, morning_hour=10, night_hour=9)


class TestReactive:
    def test_triggers_after_detection(self):
        strategy = ReactiveStrategy(detect_intervals=2)
        strategy.reset(PARAMS, 10)
        overload = 2.5 * PARAMS.q  # needs 3 machines, have 2
        assert strategy.decide(make_state(0, 2, overload)) is None
        assert strategy.decide(make_state(1, 2, overload)) == 3

    def test_headroom_adds_machines(self):
        strategy = ReactiveStrategy(headroom=0.5, detect_intervals=1)
        strategy.reset(PARAMS, 10)
        assert strategy.decide(make_state(0, 2, 2.5 * PARAMS.q)) == 4

    def test_scale_in_one_at_a_time(self):
        strategy = ReactiveStrategy(scale_in_intervals=3)
        strategy.reset(PARAMS, 10)
        low = 0.5 * PARAMS.q
        assert strategy.decide(make_state(0, 5, low)) is None
        assert strategy.decide(make_state(1, 5, low)) is None
        assert strategy.decide(make_state(2, 5, low)) == 4

    def test_counter_resets_on_normal_load(self):
        strategy = ReactiveStrategy(scale_in_intervals=2)
        strategy.reset(PARAMS, 10)
        low = 0.5 * PARAMS.q
        fine = 4.5 * PARAMS.q
        assert strategy.decide(make_state(0, 5, low)) is None
        assert strategy.decide(make_state(1, 5, fine)) is None
        assert strategy.decide(make_state(2, 5, low)) is None

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            ReactiveStrategy(headroom=-0.1)
        with pytest.raises(ConfigurationError):
            ReactiveStrategy(detect_intervals=0)


class TestPredictivePolicy:
    def test_plateau_fast_path_skips_planning(self):
        policy = PredictivePolicy(PARAMS, max_machines=10)
        load = np.full(13, 1.5 * PARAMS.q)
        decision = policy.decide(load, 2)
        assert decision.target is None
        assert not decision.planned
        assert policy.plans_computed == 0

    def test_scale_out_executed_immediately(self):
        policy = PredictivePolicy(PARAMS, max_machines=10)
        # Load exceeds the 2-machine capacity already at the next
        # interval, so the first move must start now.
        load = np.linspace(1.9, 6.5, 13) * PARAMS.q
        decision = policy.decide(load, 2)
        assert decision.planned
        assert decision.target is not None and decision.target > 2

    def test_scale_out_delayed_when_there_is_time(self):
        policy = PredictivePolicy(PARAMS, max_machines=10)
        # Capacity is exceeded only several intervals out: the planner
        # delays the move (minimizing cost), so nothing executes yet.
        load = np.linspace(1.5, 2.8, 13) * PARAMS.q
        decision = policy.decide(load, 2)
        assert decision.planned
        assert decision.target is None

    def test_scale_in_needs_three_votes(self):
        policy = PredictivePolicy(PARAMS, max_machines=10, scale_in_confirmations=3)
        load = np.full(13, 0.5 * PARAMS.q)
        assert policy.decide(load, 4).target is None
        assert policy.decide(load, 4).target is None
        third = policy.decide(load, 4)
        assert third.target is not None and third.target < 4

    def test_scale_out_resets_scale_in_votes(self):
        policy = PredictivePolicy(PARAMS, max_machines=10, scale_in_confirmations=2)
        low = np.full(13, 0.5 * PARAMS.q)
        high = np.linspace(1.5, 6.5, 13) * PARAMS.q
        assert policy.decide(low, 4).target is None
        policy.decide(high, 4)  # interleaved scale-out request
        assert policy.decide(low, 4).target is None  # vote count restarted

    def test_fallback_on_infeasible(self):
        policy = PredictivePolicy(PARAMS, max_machines=10)
        load = np.full(13, 6.0 * PARAMS.q)
        load[0] = 0.9 * PARAMS.q
        load[1] = 6.0 * PARAMS.q  # cliff no plan can climb
        decision = policy.decide(load, 1)
        assert decision.fallback
        assert decision.target == 6
        assert policy.fallback_scale_outs == 1


class TestPStoreStrategy:
    def test_oracle_strategy_scales_ahead(self):
        q = PARAMS.q
        rates = np.concatenate([
            np.full(20, 0.8 * q), np.linspace(0.8, 4.5, 20) * q, np.full(20, 4.5 * q)
        ])
        trace = LoadTrace(rates * 300.0, slot_seconds=300.0)
        strategy = PStoreStrategy(
            OraclePredictor(trace.values), horizon=12, inflation=0.0
        )
        strategy.reset(PARAMS, 10, trace)
        targets = []
        for t in range(40):
            state = make_state(t, 1 if not targets else targets[-1],
                               float(rates[t]), history=rates)
            wanted = strategy.decide(state)
            if wanted is not None:
                targets.append(wanted)
        assert targets, "the ramp must trigger scale-outs"
        assert max(targets) == 5

    def test_warmup_falls_back_to_reactive(self):
        from repro.prediction.spar import SPARPredictor

        model = SPARPredictor(period=48, n_periods=2, n_recent=2, max_horizon=4)
        model.fit(np.tile(np.linspace(100, 200, 48), 5))
        strategy = PStoreStrategy(model, horizon=4)
        strategy.reset(PARAMS, 10, None)  # no precompute, no prefix
        state = make_state(3, 1, 2.5 * PARAMS.q, history=np.full(4, 2.5 * PARAMS.q))
        assert strategy.decide(state) == 3

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            PStoreStrategy(OraclePredictor(np.ones(4)), horizon=0)
        with pytest.raises(ValueError):
            PStoreStrategy(OraclePredictor(np.ones(4)), inflation=-1.0)
