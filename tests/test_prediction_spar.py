"""Tests for the SPAR predictor (Equation 8)."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.spar import SPARPredictor
from repro.workloads.b2w import generate_b2w_trace


def pure_periodic_series(period: int, days: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    profile = 100.0 + 50.0 * np.sin(2 * np.pi * np.arange(period) / period)
    return np.tile(profile, days)


class TestFit:
    def test_recovers_pure_periodic_signal(self):
        period = 48
        series = pure_periodic_series(period, days=14)
        model = SPARPredictor(period=period, n_periods=3, n_recent=4, max_horizon=8)
        model.fit(series)
        history = series[: 10 * period]
        prediction = model.predict(history, 8)
        truth = series[10 * period : 10 * period + 8]
        assert np.allclose(prediction, truth, rtol=1e-6)

    def test_periodic_coefficients_sum_near_one(self):
        period = 48
        series = pure_periodic_series(period, days=14)
        model = SPARPredictor(period=period, n_periods=3, n_recent=4, max_horizon=4)
        model.fit(series)
        coef = model.coefficients(1)
        assert coef[:3].sum() == pytest.approx(1.0, abs=1e-3)

    def test_tracks_recent_offsets(self):
        # A sustained offset in the recent past should shift predictions.
        period = 48
        series = pure_periodic_series(period, days=14, seed=1)
        model = SPARPredictor(period=period, n_periods=3, n_recent=6, max_horizon=2)
        # Train on data where offsets persist (AR structure).
        rng = np.random.default_rng(2)
        noise = np.cumsum(rng.normal(0, 1.0, len(series)))
        noise -= np.linspace(0, noise[-1], len(noise))
        model.fit(series + 5.0 * np.sin(noise / 20.0))
        history = series[: 10 * period].copy()
        baseline = model.predict(history, 1)[0]
        history_offset = history.copy()
        history_offset[-6:] += 30.0
        shifted = model.predict(history_offset, 1)[0]
        assert shifted > baseline

    def test_rejects_short_training(self):
        model = SPARPredictor(period=48, n_periods=3, n_recent=4, max_horizon=4)
        with pytest.raises(PredictionError):
            model.fit(np.ones(100))

    def test_rejects_bad_construction(self):
        with pytest.raises(PredictionError):
            SPARPredictor(period=1)
        with pytest.raises(PredictionError):
            SPARPredictor(period=48, n_periods=0)
        with pytest.raises(PredictionError):
            SPARPredictor(period=48, max_horizon=0)
        with pytest.raises(PredictionError):
            SPARPredictor(period=48, max_horizon=49)


class TestPredict:
    @pytest.fixture
    def fitted(self):
        trace = generate_b2w_trace(12, seed=77)
        model = SPARPredictor(period=1440, n_periods=3, n_recent=10, max_horizon=30)
        model.fit(trace.values[: 8 * 1440])
        return model, trace

    def test_predict_before_fit_raises(self):
        model = SPARPredictor(period=48, n_periods=2, n_recent=2, max_horizon=4)
        with pytest.raises(PredictionError):
            model.predict(np.ones(2000), 2)

    def test_rejects_horizon_beyond_fit(self, fitted):
        model, trace = fitted
        with pytest.raises(PredictionError):
            model.predict(trace.values[: 9 * 1440], 31)

    def test_rejects_short_history(self, fitted):
        model, _ = fitted
        with pytest.raises(PredictionError):
            model.predict(np.ones(100), 1)

    def test_predictions_non_negative_and_sane(self, fitted):
        model, trace = fitted
        history = trace.values[: 9 * 1440]
        prediction = model.predict(history, 30)
        assert prediction.shape == (30,)
        assert np.all(prediction >= 0)
        actual = trace.values[9 * 1440 : 9 * 1440 + 30]
        assert np.abs(prediction - actual).mean() / actual.mean() < 0.3

    def test_batch_predict_matches_online_predict(self, fitted):
        """batch_predict must equal per-origin predict() exactly."""
        model, trace = fitted
        tau = 15
        targets, batch = model.batch_predict(trace.values, tau)
        for check in (0, len(targets) // 2, len(targets) - 1):
            u = targets[check]
            online = model.predict(trace.values[: u - tau + 1], tau)[tau - 1]
            assert batch[check] == pytest.approx(online, rel=1e-9)

    def test_batch_predict_requires_fit_horizon(self, fitted):
        model, trace = fitted
        with pytest.raises(PredictionError):
            model.batch_predict(trace.values, 31)

    def test_coefficients_unfitted_horizon_raises(self, fitted):
        model, _ = fitted
        with pytest.raises(PredictionError):
            model.coefficients(31)
