"""Smoke + shape tests for the experiment harness (fast variants).

Each experiment must run end to end and reproduce the paper's
*qualitative* claims; absolute numbers live in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig1_load_trace,
    fig2_ideal_capacity,
    fig3_planner_goal,
    fig4_effective_capacity,
    fig5_spar_b2w,
    fig6_spar_wikipedia,
    fig7_saturation,
    fig8_chunk_size,
    registry,
    sec81_uniformity,
    table1_schedule,
)


class TestFig1:
    def test_trace_shape(self):
        result = fig1_load_trace.run()
        assert 1.5e4 < result.peak_per_minute < 4e4
        assert 6 < result.peak_to_trough < 18
        assert result.day_shape_correlation > 0.8
        assert "Figure 1" in result.format_report()


class TestFig2:
    def test_step_function_covers_demand(self):
        result = fig2_ideal_capacity.run(fast=True)
        assert np.all(result.stepped_servers * result.q >= result.demand)
        assert result.avg_stepped_servers >= result.avg_ideal_servers
        # Integrality costs little (the paper's point: the step function
        # approximates the ideal curve well).
        assert result.avg_stepped_servers < 1.25 * result.avg_ideal_servers


class TestFig3:
    def test_planner_goal(self):
        result = fig3_planner_goal.run()
        assert result.plan.moves[0].before == 2
        assert result.final_machines == 4
        assert result.capacity_always_exceeds_demand()


class TestFig4:
    def test_three_cases(self):
        result = fig4_effective_capacity.run()
        small = result.profiles[(3, 5)]
        large = result.profiles[(3, 14)]
        assert small.schedule.num_rounds == 3
        assert large.schedule.num_rounds == 11
        # Effective capacity lags allocation much more for the big move.
        gap_small = max(small.machines_allocated) - max(small.effective_machines)
        lag_large = max(
            a - e for a, e in zip(large.machines_allocated, large.effective_machines)
        )
        assert lag_large > gap_small
        # Time in units of D matches Figure 4's x-axis scale (~0.2-0.27 D).
        assert 0.15 < small.duration_in_d < 0.30
        assert 0.15 < large.duration_in_d < 0.30


class TestTable1:
    def test_schedule(self):
        result = table1_schedule.run()
        assert result.schedule.num_rounds == 11
        assert result.naive_rounds == 12
        assert result.rounds_by_phase == {1: 6, 2: 2, 3: 3}


class TestFig5:
    def test_spar_accuracy_band(self):
        result = fig5_spar_b2w.run(fast=True)
        taus = sorted(result.mre_pct)
        # Error grows with horizon and stays in the paper's band.
        assert result.mre_pct[taus[0]] <= result.mre_pct[taus[-1]]
        assert 2.0 < result.mre_pct[taus[-1]] < 20.0
        assert len(result.day_forecast) > 0


class TestFig6:
    def test_english_more_predictable(self):
        result = fig6_spar_wikipedia.run(fast=True)
        for tau in result.taus:
            assert result.mre_pct["en"][tau] < result.mre_pct["de"][tau]


class TestFig7:
    def test_saturation_procedure(self):
        result = fig7_saturation.run(fast=True)
        assert 350 < result.saturation_rate < 500  # paper: 438
        assert result.derived.q_max == pytest.approx(0.8 * result.saturation_rate)
        assert result.derived.q == pytest.approx(0.65 * result.saturation_rate)
        # Latency explodes past saturation.
        last = result.levels[-1]
        assert last.p99_ms > 1000
        assert last.served < last.offered


class TestFig8:
    def test_chunk_size_tradeoff(self):
        result = fig8_chunk_size.run(fast=True)
        by = result.by_chunk()
        static = by[None]
        small = by[1000.0]
        large = by[8000.0]
        # 1000 kB chunks stay close to static and within the SLA.
        assert small.p99_ms_max < 500.0
        assert small.p99_ms_max < 2.0 * static.p99_ms_max
        # Large chunks spike badly.
        assert large.p99_ms_max > 2.0 * small.p99_ms_max


class TestSec81:
    def test_uniformity(self):
        result = sec81_uniformity.run(fast=True)
        # Access skew is modest (the fast variant uses 10x fewer keys so
        # the sampling noise is ~3x the full run's); data skew is smaller.
        assert result.access_report["max_over_mean_pct"] < 35.0
        assert (
            result.data_report["max_over_mean_pct"]
            < result.access_report["max_over_mean_pct"]
        )


class TestAblations:
    def test_effcap_ablation(self):
        result = ablations.run_effcap_ablation()
        assert result.naive_true_violations > 0
        assert result.aware_true_violations == 0

    def test_schedule_ablation(self):
        result = ablations.run_schedule_ablation(max_nodes=12)
        assert result.cases
        assert result.total_saved_rounds > 0
        for _, _, optimal, naive in result.cases:
            assert optimal < naive

    def test_horizon_ablation(self):
        result = ablations.run_horizon_ablation(fast=True)
        by_h = {int(p.label): p for p in result.points}
        shortest, adequate = min(by_h), max(by_h)
        # A window shorter than a move's duration blocks scale-ins, so
        # the cluster stays over-provisioned: short windows cost money.
        assert by_h[shortest].cost > 1.02 * by_h[adequate].cost
        assert (
            by_h[shortest].pct_time_insufficient
            >= by_h[adequate].pct_time_insufficient
        )

    def test_greedy_ablation(self):
        result = ablations.run_greedy_ablation(fast=True)
        # The DP dominates the greedy peak rule: cheaper, no worse on
        # violations, and fewer reconfigurations.
        assert result.dp_point.cost < result.greedy_point.cost
        assert (
            result.dp_point.pct_time_insufficient
            <= result.greedy_point.pct_time_insufficient + 1e-9
        )
        assert result.cost_savings_pct > 0

    def test_policy_ablation(self):
        result = ablations.run_policy_ablation(fast=True)
        by_conf = {p.label: p for p in result.confirmation}
        # Confirmation reduces reconfiguration churn.
        assert by_conf["3"].moves < by_conf["1"].moves
        by_infl = {p.label: p for p in result.inflation}
        # More inflation costs more but violates less (or equal).
        assert by_infl["30%"].cost > by_infl["0%"].cost
        assert (
            by_infl["30%"].pct_time_insufficient
            <= by_infl["0%"].pct_time_insufficient
        )


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = {spec.experiment_id for spec in registry.list_experiments()}
        assert {
            "fig1", "fig2", "fig3", "fig4", "table1", "fig5", "fig6", "sec5",
            "fig7", "fig8", "sec81", "fig9", "fig10", "fig11", "fig12",
            "fig13", "ablations",
        } <= ids

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            registry.get("fig99")
