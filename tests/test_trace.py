"""Tests for LoadTrace containers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.trace import LoadTrace, concat


@pytest.fixture
def trace() -> LoadTrace:
    return LoadTrace(np.arange(10.0) + 1.0, slot_seconds=60.0, name="t")


class TestValidation:
    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            LoadTrace(np.zeros((2, 2)))

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            LoadTrace(np.array([1.0, -1.0]))

    def test_rejects_bad_slot(self):
        with pytest.raises(ConfigurationError):
            LoadTrace(np.array([1.0]), slot_seconds=0)

    def test_rejects_mismatched_peaks(self):
        with pytest.raises(ConfigurationError):
            LoadTrace(np.array([1.0, 2.0]), peak_values=np.array([1.0]))

    def test_rejects_peaks_below_values(self):
        with pytest.raises(ConfigurationError):
            LoadTrace(np.array([2.0, 2.0]), peak_values=np.array([1.0, 3.0]))


class TestContainer:
    def test_len_and_iter(self, trace):
        assert len(trace) == 10
        assert list(trace)[:3] == [1.0, 2.0, 3.0]

    def test_index(self, trace):
        assert trace[0] == 1.0
        assert trace[-1] == 10.0

    def test_slice_keeps_offset(self, trace):
        part = trace[3:7]
        assert isinstance(part, LoadTrace)
        assert len(part) == 4
        assert part.start_slot == 3
        assert part[0] == 4.0

    def test_slice_carries_peaks(self):
        trace = LoadTrace(np.ones(6), peak_values=np.full(6, 2.0))
        part = trace[2:4]
        assert part.peak_values is not None
        assert list(part.peak_values) == [2.0, 2.0]

    def test_slice_with_step_rejected(self, trace):
        with pytest.raises(ConfigurationError):
            trace[::2]


class TestTimeMath:
    def test_duration(self, trace):
        assert trace.duration_seconds == 600.0
        assert trace.duration_days == pytest.approx(600.0 / 86400.0)

    def test_slots_per_day(self):
        assert LoadTrace(np.zeros(1), slot_seconds=60.0).slots_per_day == 1440
        with pytest.raises(ConfigurationError):
            LoadTrace(np.zeros(1), slot_seconds=7.0).slots_per_day

    def test_slice_days(self):
        trace = LoadTrace(np.arange(2880.0), slot_seconds=60.0)
        day2 = trace.slice_days(1, 1)
        assert len(day2) == 1440
        assert day2[0] == 1440.0
        with pytest.raises(ConfigurationError):
            trace.slice_days(1.5, 1)


class TestRates:
    def test_per_second(self, trace):
        assert trace.per_second()[0] == pytest.approx(1.0 / 60.0)

    def test_peak_per_second_fallback(self, trace):
        assert np.allclose(trace.peak_per_second(), trace.per_second())

    def test_scaled(self, trace):
        doubled = trace.scaled(2.0)
        assert doubled[0] == 2.0
        assert doubled.slot_seconds == trace.slot_seconds

    def test_time_compressed_multiplies_rate(self, trace):
        fast = trace.time_compressed(10)
        assert fast.slot_seconds == pytest.approx(6.0)
        assert fast[0] == trace[0]  # same counts per slot
        assert fast.per_second()[0] == pytest.approx(trace.per_second()[0] * 10)

    def test_time_compressed_rejects_bad_speedup(self, trace):
        with pytest.raises(ConfigurationError):
            trace.time_compressed(0)


class TestResample:
    def test_coarsen_sums(self):
        trace = LoadTrace(np.arange(6.0), slot_seconds=60.0)
        coarse = trace.resample(120.0)
        assert list(coarse.values) == [1.0, 5.0, 9.0]
        assert coarse.slot_seconds == 120.0

    def test_coarsen_drops_tail(self):
        trace = LoadTrace(np.arange(7.0), slot_seconds=60.0)
        coarse = trace.resample(120.0)
        assert len(coarse) == 3

    def test_coarsen_peaks_use_max_rate(self):
        trace = LoadTrace(
            np.array([10.0, 10.0]),
            slot_seconds=60.0,
            peak_values=np.array([30.0, 10.0]),
        )
        coarse = trace.resample(120.0)
        # Peak rate of the group = max member peak rate (30/60 per s),
        # expressed over the 120 s slot -> 60.
        assert coarse.peak_values[0] == pytest.approx(60.0)

    def test_refine_splits(self):
        trace = LoadTrace(np.array([60.0]), slot_seconds=60.0)
        fine = trace.resample(30.0)
        assert list(fine.values) == [30.0, 30.0]

    def test_rejects_incompatible(self):
        trace = LoadTrace(np.arange(4.0), slot_seconds=60.0)
        with pytest.raises(ConfigurationError):
            trace.resample(90.0)


class TestStats:
    def test_peak_trough_mean(self, trace):
        assert trace.peak() == 10.0
        assert trace.trough() == 1.0
        assert trace.mean() == pytest.approx(5.5)
        assert trace.peak_to_trough() == pytest.approx(10.0)

    def test_peak_to_trough_with_zero(self):
        trace = LoadTrace(np.array([0.0, 5.0]))
        assert trace.peak_to_trough() == float("inf")


class TestPersistence:
    def test_csv_round_trip(self, tmp_path, trace):
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = LoadTrace.load_csv(path)
        assert np.allclose(loaded.values, trace.values)
        assert loaded.slot_seconds == trace.slot_seconds
        assert loaded.name == trace.name
        assert loaded.peak_values is None

    def test_csv_round_trip_with_peaks(self, tmp_path):
        trace = LoadTrace(
            np.array([1.0, 2.0]), slot_seconds=30.0, name="peaky",
            peak_values=np.array([1.5, 2.5]),
        )
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = LoadTrace.load_csv(path)
        assert np.allclose(loaded.peak_values, trace.peak_values)
        assert loaded.slot_seconds == 30.0


class TestConcat:
    def test_concat(self):
        a = LoadTrace(np.array([1.0, 2.0]), slot_seconds=60.0)
        b = LoadTrace(np.array([3.0]), slot_seconds=60.0)
        joined = concat([a, b])
        assert list(joined.values) == [1.0, 2.0, 3.0]

    def test_concat_mixed_peaks(self):
        a = LoadTrace(np.array([1.0]), peak_values=np.array([2.0]))
        b = LoadTrace(np.array([3.0]))
        joined = concat([a, b])
        assert list(joined.peak_values) == [2.0, 3.0]

    def test_concat_rejects_mismatched_slots(self):
        a = LoadTrace(np.array([1.0]), slot_seconds=60.0)
        b = LoadTrace(np.array([1.0]), slot_seconds=30.0)
        with pytest.raises(ConfigurationError):
            concat([a, b])

    def test_concat_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            concat([])
