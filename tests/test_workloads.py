"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.b2w import (
    B2WTraceConfig,
    generate_b2w_long_trace,
    generate_b2w_trace,
    generate_training_and_test,
)
from repro.workloads.spikes import FlashCrowd, inject_flash_crowd
from repro.workloads.wikipedia import generate_wikipedia_pair, generate_wikipedia_trace


class TestB2WTrace:
    def test_deterministic(self):
        a = generate_b2w_trace(2, seed=5)
        b = generate_b2w_trace(2, seed=5)
        assert np.allclose(a.values, b.values)

    def test_different_seeds_differ(self):
        a = generate_b2w_trace(1, seed=1)
        b = generate_b2w_trace(1, seed=2)
        assert not np.allclose(a.values, b.values)

    def test_length_and_slots(self):
        trace = generate_b2w_trace(3)
        assert len(trace) == 3 * 1440
        assert trace.slot_seconds == 60.0

    def test_peak_magnitude_matches_paper(self):
        trace = generate_b2w_trace(3)
        assert 1.5e4 < trace.peak() < 4.0e4  # paper: ~2.3e4 req/min

    def test_peak_to_trough_near_ten(self):
        trace = generate_b2w_trace(5)
        assert 6.0 < trace.daily_peak_to_trough() < 18.0

    def test_diurnal_trough_at_night(self):
        trace = generate_b2w_trace(1, seed=3)
        hour_means = trace.values.reshape(24, 60).mean(axis=1)
        assert np.argmin(hour_means) in range(2, 8)  # trough in the small hours
        assert np.argmax(hour_means) in range(12, 23)

    def test_has_peaks_metadata(self):
        trace = generate_b2w_trace(1)
        assert trace.peak_values is not None
        assert np.all(trace.peak_values + 1e-9 >= trace.values)

    def test_custom_slot_seconds(self):
        trace = generate_b2w_trace(1, slot_seconds=300.0)
        assert len(trace) == 288
        # Counts scale with the slot length.
        assert trace.mean() == pytest.approx(
            generate_b2w_trace(1).mean() * 5, rel=0.15
        )

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            B2WTraceConfig(num_days=0)
        with pytest.raises(ConfigurationError):
            B2WTraceConfig(peak_to_trough=0.5)
        with pytest.raises(ConfigurationError):
            B2WTraceConfig(start_weekday=9)

    def test_black_friday_outside_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_b2w_trace(
                2, config=B2WTraceConfig(num_days=2, black_friday_day=5)
            )


class TestBlackFriday:
    def test_black_friday_elevates_day(self):
        config = B2WTraceConfig(num_days=21, black_friday_day=14, seed=8)
        trace = generate_b2w_trace(config=config)
        per_day = trace.values.reshape(21, 1440).sum(axis=1)
        regular = np.median(per_day[:13])
        assert per_day[14] > 1.6 * regular

    def test_long_trace_includes_black_friday(self):
        trace = generate_b2w_long_trace(num_days=130, black_friday_day=116)
        per_day = trace.values.reshape(130, 288).sum(axis=1)
        assert np.argmax(per_day) in (115, 116, 117)


class TestTrainTestSplit:
    def test_split_shapes(self):
        train, test = generate_training_and_test(train_days=7, test_days=2)
        assert len(train) == 7 * 1440
        assert len(test) == 2 * 1440
        assert test.start_slot == 7 * 1440


class TestWikipedia:
    def test_magnitudes(self):
        english = generate_wikipedia_trace("en", 7)
        german = generate_wikipedia_trace("de", 7)
        assert 5e6 < english.peak() < 2e7  # paper: 2-10 M/hour
        assert 1e6 < german.peak() < 5e6
        assert english.mean() > german.mean()

    def test_hourly_slots(self):
        trace = generate_wikipedia_trace("en", 3)
        assert trace.slot_seconds == 3600.0
        assert len(trace) == 72

    def test_german_noisier(self):
        english, german = generate_wikipedia_pair(28)

        def residual_cv(trace):
            days = trace.values.reshape(-1, 24)
            profile = days.mean(axis=0)
            residual = days / profile
            return residual.std()

        assert residual_cv(german) > residual_cv(english)

    def test_rejects_unknown_language(self):
        with pytest.raises(ConfigurationError):
            generate_wikipedia_trace("fr")


class TestFlashCrowd:
    def test_spike_shape(self):
        base = generate_b2w_trace(1, seed=4)
        spike = FlashCrowd(
            start_seconds=12 * 3600, ramp_seconds=600, plateau_seconds=1200,
            decay_seconds=1800, magnitude=3.0,
        )
        spiked = inject_flash_crowd(base, spike)
        start = int(12 * 60)
        plateau = start + 10 + 5
        assert spiked.values[plateau] == pytest.approx(base.values[plateau] * 3.0)
        # Before the spike nothing changes.
        assert np.allclose(spiked.values[: start - 1], base.values[: start - 1])
        # Well after the decay nothing changes.
        end = start + 10 + 20 + 30 + 5
        assert np.allclose(spiked.values[end + 5 :], base.values[end + 5 :])

    def test_peaks_scaled_too(self):
        base = generate_b2w_trace(1, seed=4)
        spike = FlashCrowd(start_seconds=3600, magnitude=2.0)
        spiked = inject_flash_crowd(base, spike)
        assert np.all(spiked.peak_values + 1e-9 >= spiked.values)

    def test_rejects_bad_spike(self):
        base = generate_b2w_trace(1)
        with pytest.raises(ConfigurationError):
            FlashCrowd(start_seconds=0, magnitude=0.5)
        with pytest.raises(ConfigurationError):
            inject_flash_crowd(base, FlashCrowd(start_seconds=1e9))
