"""Tests for AR, ARMA, naive baselines, oracle, inflation and metrics."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.ar import ARPredictor, fit_ar_coefficients
from repro.prediction.arma import ARMAPredictor
from repro.prediction.base import InflatedPredictor
from repro.prediction.metrics import (
    bias,
    mape,
    mean_relative_error,
    mean_relative_error_pct,
    rmse,
)
from repro.prediction.naive import PersistencePredictor, SeasonalNaivePredictor
from repro.prediction.oracle import OraclePredictor


def ar2_series(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    series = np.zeros(n)
    for t in range(2, n):
        series[t] = 10.0 + 0.6 * series[t - 1] + 0.3 * series[t - 2] + rng.normal(0, 1)
    return series + 100.0


class TestAR:
    def test_fit_recovers_ar2(self):
        series = ar2_series(5000)
        intercept, phi = fit_ar_coefficients(series, order=2)
        assert phi[0] == pytest.approx(0.6, abs=0.05)
        assert phi[1] == pytest.approx(0.3, abs=0.05)

    def test_one_step_forecast_accurate(self):
        series = ar2_series(3000)
        model = ARPredictor(order=2).fit(series[:2500])
        errors = []
        for t in range(2500, 2990):
            prediction = model.predict(series[:t], 1)[0]
            errors.append(abs(prediction - series[t]))
        assert np.mean(errors) < 1.5  # noise std is 1

    def test_multi_step_shape(self):
        series = ar2_series(1000)
        model = ARPredictor(order=4).fit(series)
        out = model.predict(series, 20)
        assert out.shape == (20,)
        assert np.all(out >= 0)

    def test_rejects_bad_order(self):
        with pytest.raises(PredictionError):
            ARPredictor(order=0)
        with pytest.raises(PredictionError):
            fit_ar_coefficients(np.ones(3), order=5)

    def test_predict_before_fit(self):
        with pytest.raises(PredictionError):
            ARPredictor(order=2).predict(np.ones(100), 1)


class TestARMA:
    def test_fit_and_forecast(self):
        series = ar2_series(4000, seed=3)
        model = ARMAPredictor(ar_order=2, ma_order=2).fit(series[:3500])
        errors = []
        for t in range(3500, 3900, 10):
            prediction = model.predict(series[:t], 1)[0]
            errors.append(abs(prediction - series[t]))
        assert np.mean(errors) < 2.0

    def test_ma_zero_behaves_like_ar(self):
        series = ar2_series(2000, seed=4)
        arma = ARMAPredictor(ar_order=2, ma_order=0).fit(series)
        ar = ARPredictor(order=2).fit(series)
        p1 = arma.predict(series, 5)
        p2 = ar.predict(series, 5)
        assert np.allclose(p1, p2, rtol=0.02)

    def test_rejects_bad_orders(self):
        with pytest.raises(PredictionError):
            ARMAPredictor(ar_order=0)
        with pytest.raises(PredictionError):
            ARMAPredictor(ar_order=2, ma_order=-1)


class TestNaive:
    def test_persistence(self):
        model = PersistencePredictor().fit(np.ones(5))
        out = model.predict(np.array([1.0, 2.0, 7.0]), 3)
        assert list(out) == [7.0, 7.0, 7.0]

    def test_seasonal_naive_exact_on_periodic(self):
        period = 24
        profile = np.arange(period, dtype=float) + 1
        series = np.tile(profile, 5)
        model = SeasonalNaivePredictor(period=period)
        prediction = model.predict(series[: 3 * period], period)
        assert np.allclose(prediction, profile)

    def test_seasonal_naive_needs_history(self):
        model = SeasonalNaivePredictor(period=24)
        with pytest.raises(PredictionError):
            model.predict(np.ones(10), 1)

    def test_seasonal_naive_horizon_cap(self):
        model = SeasonalNaivePredictor(period=24)
        with pytest.raises(PredictionError):
            model.predict(np.ones(100), 25)


class TestOracle:
    def test_returns_truth(self):
        truth = np.arange(100.0)
        oracle = OraclePredictor(truth)
        out = oracle.predict(truth[:10], 5)
        assert list(out) == [10.0, 11.0, 12.0, 13.0, 14.0]

    def test_pads_beyond_end(self):
        truth = np.arange(10.0)
        oracle = OraclePredictor(truth)
        out = oracle.predict(truth[:8], 5)
        assert list(out) == [8.0, 9.0, 9.0, 9.0, 9.0]

    def test_fully_beyond_end(self):
        truth = np.arange(10.0)
        oracle = OraclePredictor(truth)
        out = oracle.predict(truth, 3)
        assert list(out) == [9.0, 9.0, 9.0]


class TestInflation:
    def test_inflates(self):
        oracle = OraclePredictor(np.full(10, 100.0))
        inflated = InflatedPredictor(oracle, inflation=0.15).fit(np.ones(1))
        out = inflated.predict(np.full(5, 100.0), 2)
        assert np.allclose(out, 115.0)

    def test_rejects_negative(self):
        with pytest.raises(PredictionError):
            InflatedPredictor(PersistencePredictor(), inflation=-0.1)


class TestMetrics:
    def test_mre(self):
        actual = np.array([100.0, 200.0])
        predicted = np.array([110.0, 180.0])
        assert mean_relative_error(actual, predicted) == pytest.approx(0.1)
        assert mean_relative_error_pct(actual, predicted) == pytest.approx(10.0)
        assert mape(actual, predicted) == pytest.approx(10.0)

    def test_mre_skips_zero_actuals(self):
        actual = np.array([0.0, 100.0])
        predicted = np.array([50.0, 110.0])
        assert mean_relative_error(actual, predicted) == pytest.approx(0.1)

    def test_mre_all_zero_raises(self):
        with pytest.raises(PredictionError):
            mean_relative_error(np.zeros(3), np.ones(3))

    def test_rmse_and_bias(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.array([2.0, 2.0, 2.0])
        assert rmse(actual, predicted) == pytest.approx(np.sqrt(2.0 / 3.0))
        assert bias(actual, predicted) == pytest.approx(0.0)

    def test_length_mismatch(self):
        with pytest.raises(PredictionError):
            rmse(np.ones(2), np.ones(3))

    def test_empty_raises(self):
        with pytest.raises(PredictionError):
            rmse(np.ones(0), np.ones(0))
