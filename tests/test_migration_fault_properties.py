"""Migration under injected faults: retry backoff, permanent failure,
stalls, and the conservation property — no fault schedule may lose data
(docs/ROBUSTNESS.md)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cluster import Cluster
from repro.engine.migration import Migration, MigrationConfig
from repro.engine.table import DatabaseSchema, TableSchema
from repro.errors import MigrationError

DB_KB = 1106.0 * 1024.0
sizes = st.integers(min_value=1, max_value=10)


def make_cluster(initial: int) -> Cluster:
    schema = DatabaseSchema().add(TableSchema(name="T", key_column="k"))
    return Cluster(
        schema, initial_nodes=initial, partitions_per_node=2,
        num_buckets=120, max_nodes=12,
    )


def fill(cluster: Cluster, rows: int) -> None:
    for i in range(rows):
        key = f"row-{i}"
        cluster.route(key).put("T", key, {"k": key})


# ----------------------------------------------------------------------
# Retry with capped exponential backoff
# ----------------------------------------------------------------------

def test_retry_delays_increase_exponentially():
    cluster = make_cluster(2)
    config = MigrationConfig(max_retries=3, backoff_base_s=2.0, backoff_cap_s=30.0)
    migration = Migration(cluster, 4, DB_KB, config)

    delays = [migration.inject_transfer_failure() for _ in range(3)]
    assert delays == [2.0, 4.0, 8.0]
    assert delays == sorted(delays)
    assert delays == [config.retry_delay_s(i) for i in (1, 2, 3)]
    assert migration.paused
    assert migration.retries == 3 and migration.chunk_failures == 3


def test_backoff_is_capped():
    config = MigrationConfig(max_retries=10, backoff_base_s=2.0, backoff_cap_s=10.0)
    assert config.retry_delay_s(1) == 2.0
    assert config.retry_delay_s(3) == 8.0
    assert config.retry_delay_s(4) == 10.0   # would be 16 uncapped
    assert config.retry_delay_s(9) == 10.0


def test_max_retries_exhaustion_fails_permanently():
    cluster = make_cluster(2)
    config = MigrationConfig(max_retries=3)
    migration = Migration(cluster, 4, DB_KB, config)
    for _ in range(3):
        migration.inject_transfer_failure()
    with pytest.raises(MigrationError):
        migration.inject_transfer_failure()
    assert migration.failed_permanently
    assert migration.chunk_failures == 4


def test_failure_streak_resets_once_backoff_drains():
    cluster = make_cluster(2)
    config = MigrationConfig(max_retries=1, backoff_base_s=2.0, backoff_cap_s=30.0)
    migration = Migration(cluster, 4, DB_KB, config)
    assert migration.inject_transfer_failure() == 2.0
    migration.step(5.0)  # drains the backoff; the retried chunk lands
    assert not migration.paused
    # A later, unrelated failure starts a fresh streak at the base delay.
    assert migration.inject_transfer_failure() == 2.0


def test_stall_pauses_progress_then_reenqueues():
    cluster = make_cluster(2)
    migration = Migration(cluster, 4, DB_KB)
    migration.step(1.0)
    frac = migration.fraction_completed
    migration.inject_stall(50.0)
    assert migration.paused and migration.stalls == 1
    step = migration.step(50.0)
    # The whole step was eaten by the stall window: zero progress and no
    # chunk pauses hit the partitions while transfers are suspended.
    assert migration.fraction_completed == pytest.approx(frac)
    assert step.blocked_partitions == {}
    assert migration.take_recovered_stalls() == 1
    assert migration.take_recovered_stalls() == 0  # consumed
    assert not migration.paused
    while not migration.completed:
        migration.step(1e6)
    assert cluster.num_active_nodes == 4


def test_dead_round_endpoint_raises_migration_error():
    """A transfer whose endpoint crashed surfaces MigrationError — never
    a KeyError or bare assert — so the control loop can abort cleanly."""
    cluster = make_cluster(3)
    migration = Migration(cluster, 5, DB_KB)
    cluster.fail_node(migration._phys[0])  # an active sender of round 0
    with pytest.raises(MigrationError):
        migration.step(1.0)


def test_deallocated_receiver_raises_migration_error():
    cluster = make_cluster(2)
    migration = Migration(cluster, 3, DB_KB)
    # Deactivate the just-allocated receiver behind the migration's back.
    cluster.set_active(migration._phys[2], False)
    with pytest.raises(MigrationError):
        while not migration.completed:
            migration.step(1e6)


# ----------------------------------------------------------------------
# Conservation property: no fault schedule loses data
# ----------------------------------------------------------------------

fault_schedule = st.lists(
    st.tuples(st.integers(0, 30), st.sampled_from(["fail", "stall"])),
    max_size=8,
)


@given(before=sizes, after=sizes, rows=st.integers(10, 80),
       schedule=fault_schedule)
@settings(max_examples=30, deadline=None)
def test_migrated_data_conserved_under_any_fault_schedule(
    before, after, rows, schedule
):
    """Total rows and data kB are conserved across any injected
    failure/stall schedule, and the migration still terminates with the
    target allocation and balanced plan."""
    if before == after:
        return
    cluster = make_cluster(before)
    fill(cluster, rows)
    total_kb = cluster.total_data_kb()
    # Generous retry budget: this property is about conservation, not
    # about permanent failure (tested separately).
    config = MigrationConfig(
        max_retries=1000, backoff_base_s=0.25, backoff_cap_s=1.0
    )
    migration = Migration(cluster, after, DB_KB, config)
    due = sorted(schedule)
    dt = max(migration.round_seconds / 3.0, 1.0)

    steps = 0
    while not migration.completed:
        while due and due[0][0] <= steps:
            _, kind = due.pop(0)
            if kind == "fail":
                migration.inject_transfer_failure()
            else:
                migration.inject_stall(0.5)
            assert cluster.total_rows() == rows
        migration.step(dt)
        steps += 1
        assert steps < 10_000

    assert cluster.total_rows() == rows
    assert cluster.total_data_kb() == pytest.approx(total_kb)
    assert cluster.num_active_nodes == after
    for i in range(rows):
        key = f"row-{i}"
        assert cluster.route(key).get("T", key) == {"k": key}
    assert sum(cluster.data_fractions().values()) == pytest.approx(1.0)
