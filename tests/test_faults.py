"""The fault-injection subsystem: plans, parsing, the injector cursor,
cluster crash/recovery, and end-to-end engine runs under faults
(docs/ROBUSTNESS.md)."""

import numpy as np
import pytest

from repro.core.controller import ReactiveController
from repro.core.params import SystemParameters
from repro.engine.cluster import Cluster
from repro.engine.simulator import EngineConfig, EngineSimulator
from repro.engine.table import DatabaseSchema, TableSchema
from repro.errors import EngineError, FaultInjectionError, NodeFailedError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    MigrationStall,
    NodeCrash,
    NodeStraggler,
    TransferFailure,
    parse_fault_spec,
)
from repro.workloads.trace import LoadTrace

# ----------------------------------------------------------------------
# FaultPlan: construction, generation, parsing
# ----------------------------------------------------------------------

def test_plan_sorts_events_and_counts():
    plan = FaultPlan(
        [
            MigrationStall(at_seconds=50.0),
            NodeCrash(at_seconds=10.0, node_id=1),
            TransferFailure(at_seconds=30.0),
            NodeStraggler(at_seconds=20.0, node_id=2),
        ]
    )
    assert [e.at_seconds for e in plan] == [10.0, 20.0, 30.0, 50.0]
    assert plan.counts() == {
        "crashes": 1, "stragglers": 1, "transfer_failures": 1, "stalls": 1,
    }
    assert len(plan) == 4 and bool(plan)
    assert not FaultPlan.empty()


def test_event_validation():
    with pytest.raises(FaultInjectionError):
        NodeCrash(at_seconds=-1.0, node_id=0)
    with pytest.raises(FaultInjectionError):
        NodeCrash(at_seconds=0.0, node_id=0, recover_after_seconds=0.0)
    with pytest.raises(FaultInjectionError):
        NodeStraggler(at_seconds=0.0, node_id=0, factor=1.5)
    with pytest.raises(FaultInjectionError):
        TransferFailure(at_seconds=0.0, count=0)
    with pytest.raises(FaultInjectionError):
        MigrationStall(at_seconds=0.0, duration_seconds=0.0)


def test_generate_is_deterministic_per_seed():
    a = FaultPlan.generate(7, 1000.0, crashes=2, stragglers=1,
                           transfer_failures=3, stalls=2)
    b = FaultPlan.generate(7, 1000.0, crashes=2, stragglers=1,
                           transfer_failures=3, stalls=2)
    c = FaultPlan.generate(8, 1000.0, crashes=2, stragglers=1,
                           transfer_failures=3, stalls=2)
    assert a.events == b.events
    assert a.events != c.events
    assert a.counts() == {
        "crashes": 2, "stragglers": 1, "transfer_failures": 3, "stalls": 2,
    }
    # Times stay inside the middle 80% of the run.
    assert all(100.0 <= e.at_seconds <= 900.0 for e in a)


def test_parse_fault_spec_full_grammar():
    plan = parse_fault_spec(
        "crash@1200:n3:recover=600, straggle@2000:n1:x=0.4:for=90,"
        "xfail@10:count=2, stall@5:for=12"
    )
    stall, xfail, crash, straggle = plan.events
    assert isinstance(stall, MigrationStall) and stall.duration_seconds == 12.0
    assert isinstance(xfail, TransferFailure) and xfail.count == 2
    assert isinstance(crash, NodeCrash)
    assert (crash.node_id, crash.recover_after_seconds) == (3, 600.0)
    assert isinstance(straggle, NodeStraggler)
    assert (straggle.node_id, straggle.factor, straggle.duration_seconds) == (
        1, 0.4, 90.0,
    )


def test_parse_fault_spec_gen_entry_matches_generate():
    plan = parse_fault_spec("gen@0:seed=7:span=1000:crashes=2:xfails=0:stalls=0")
    ref = FaultPlan.generate(7, 1000.0, crashes=2, transfer_failures=0, stalls=0)
    assert plan.events == ref.events


@pytest.mark.parametrize(
    "spec",
    ["boom@10", "crash@10", "crash@abc:n1", "straggle@5", "gen@0:seed=1"],
)
def test_parse_fault_spec_rejects_bad_entries(spec):
    with pytest.raises(FaultInjectionError):
        parse_fault_spec(spec)


@pytest.mark.parametrize(
    ("spec", "token"),
    [
        ("crash@10:nfoo", "foo"),
        ("crash@10:n1:recover=soon", "soon"),
        ("straggle@10:n0:x=fast", "fast"),
        ("straggle@10:n0:for=ever", "ever"),
        ("xfail@10:count=lots", "lots"),
        ("stall@10:for=abit", "abit"),
        ("gen@0:seed=x:span=100", "x"),
        ("gen@0:seed=1:span=wide", "wide"),
    ],
)
def test_parse_fault_spec_errors_name_the_offending_token(spec, token):
    """Friendly parse errors: the message carries the bad token and the
    entry it came from, so the CLI can print one readable line."""
    with pytest.raises(FaultInjectionError) as excinfo:
        parse_fault_spec(spec)
    message = str(excinfo.value)
    assert repr(token) in message
    assert repr(spec) in message


# ----------------------------------------------------------------------
# FaultInjector: cursor semantics
# ----------------------------------------------------------------------

def test_injector_pops_events_in_time_order():
    plan = FaultPlan(
        [NodeCrash(at_seconds=10.0, node_id=0), MigrationStall(at_seconds=20.0)]
    )
    injector = FaultInjector(plan)
    assert injector.events_due(5.0) == []
    due = injector.events_due(10.0)
    assert len(due) == 1 and isinstance(due[0], NodeCrash)
    assert not injector.exhausted
    assert len(injector.events_due(100.0)) == 1
    assert injector.exhausted


def test_injector_quiet_over_windows():
    injector = FaultInjector(FaultPlan([MigrationStall(at_seconds=15.0)]))
    assert injector.quiet_over(0.0, 14.0)
    assert not injector.quiet_over(0.0, 15.0)
    assert not injector.quiet_over(14.0, 20.0)
    injector.events_due(15.0)
    assert injector.quiet_over(0.0, 1e9)
    injector.schedule_recovery(3, 40.0)
    assert not injector.quiet_over(30.0, 50.0)
    assert injector.recoveries_due(40.0) == [3]
    injector.add_straggler(1, 0.5, end_seconds=60.0)
    assert not injector.quiet_over(55.0, 65.0)
    assert injector.straggler_expirations(60.0) == [1]
    assert injector.exhausted


# ----------------------------------------------------------------------
# Cluster: crash and recovery
# ----------------------------------------------------------------------

def make_cluster(initial=4, rows=60):
    schema = DatabaseSchema().add(TableSchema(name="T", key_column="k"))
    cluster = Cluster(
        schema, initial_nodes=initial, partitions_per_node=2,
        num_buckets=64, max_nodes=6,
    )
    for i in range(rows):
        key = f"row-{i}"
        cluster.route(key).put("T", key, {"k": key})
    return cluster


def test_fail_node_reroutes_buckets_to_survivors():
    cluster = make_cluster()
    rows_before = cluster.total_rows()
    version_before = cluster.routing_version
    owned = sum(1 for b in range(64) if cluster.plan.node_of(b) == 1)

    rerouted = cluster.fail_node(1)

    assert rerouted == owned > 0
    assert cluster.failed_nodes() == [1]
    assert cluster.num_active_nodes == 3
    assert cluster.num_available_nodes == 5
    assert cluster.routing_version > version_before
    # Every bucket now lives on a healthy active node, no rows were lost,
    # and every key still routes to a partition that has it.
    owners = {cluster.plan.node_of(b) for b in range(64)}
    assert 1 not in owners
    assert cluster.total_rows() == rows_before
    for i in range(60):
        key = f"row-{i}"
        assert cluster.route(key).get("T", key) == {"k": key}
    assert 1 not in cluster.data_fractions()


def test_failed_node_is_untouchable_until_recovered():
    cluster = make_cluster()
    cluster.fail_node(1)
    with pytest.raises(NodeFailedError):
        cluster.set_active(1, True)
    with pytest.raises(NodeFailedError):
        cluster.fail_node(1)
    with pytest.raises(NodeFailedError):
        cluster.move_bucket(0, 1)

    cluster.recover_node(1)
    assert cluster.failed_nodes() == []
    # Recovered nodes return as empty inactive spares.
    assert not cluster.nodes[1].active
    assert cluster.nodes[1].row_count() == 0
    cluster.set_active(1, True)  # allocatable again


def test_fail_node_edge_cases():
    cluster = make_cluster(initial=1)
    with pytest.raises(EngineError):
        cluster.fail_node(0)  # last active node
    # Failing an idle spare re-routes nothing.
    assert cluster.fail_node(4) == 0
    assert cluster.total_rows() == 60
    with pytest.raises(EngineError):
        cluster.recover_node(0)  # never failed


# ----------------------------------------------------------------------
# Engine runs under faults
# ----------------------------------------------------------------------

PARAMS = SystemParameters(interval_seconds=60.0)


def make_trace(rates, slot_seconds=10.0):
    return LoadTrace(
        np.asarray(rates, dtype=float) * slot_seconds, slot_seconds=slot_seconds
    )


def ramp_trace():
    rates = np.concatenate(
        [np.linspace(200.0, 1200.0, 30), np.full(10, 1200.0)]
    )
    return make_trace(rates)


def reactive(max_machines=8):
    return ReactiveController(
        PARAMS,
        max_machines=max_machines,
        detect_slots=2,
        scale_in_slots=10_000,
        measurement_slot_seconds=10.0,
    )


def engine_config(**overrides):
    defaults = dict(dt_seconds=1.0, max_nodes=8, db_size_kb=4000.0)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def test_empty_fault_plan_is_bit_identical():
    """Acceptance criterion: with an empty FaultPlan (or none at all)
    every run output is bit-identical to the fault-free engine."""
    trace = ramp_trace()

    def run(injector):
        sim = EngineSimulator(
            engine_config(), initial_nodes=2, fault_injector=injector
        )
        return sim.run(trace, controller=reactive())

    plain = run(None)
    empty = run(FaultInjector(FaultPlan.empty()))
    for field in ("time", "offered", "served", "p50_ms", "p95_ms", "p99_ms",
                  "mean_ms", "machines", "reconfiguring"):
        assert np.array_equal(getattr(plain, field), getattr(empty, field)), field


def test_crash_recovery_end_to_end():
    """A node crash mid-run: buckets re-route, the controller scales back
    out onto healthy spares, the node later returns to the pool — with
    zero uncaught exceptions."""
    trace = make_trace(np.full(60, 1000.0))  # needs 4 machines at Q=285
    plan = parse_fault_spec("crash@100:n1:recover=300")
    injector = FaultInjector(plan)
    sim = EngineSimulator(
        engine_config(max_nodes=6), initial_nodes=4, fault_injector=injector
    )
    controller = reactive(max_machines=6)
    result = sim.run(trace, controller=controller)

    stats = injector.stats
    assert stats.crashes_injected == 1
    assert stats.crashes_skipped == 0
    assert stats.buckets_rerouted > 0
    assert stats.nodes_recovered == 1
    machines = result.machines
    # The crash is visible (allocation dips to 3)...
    assert machines[int(100 / sim.config.dt_seconds)] == 3.0
    # ...and the controller recovers the allocation before the run ends.
    assert machines[-1] == 4.0
    assert controller.moves_requested >= 1
    assert not sim.cluster.nodes[1].failed


def test_straggler_degrades_then_recovers():
    rates = np.full(40, 700.0)  # ~80% of two nodes' capacity
    trace = make_trace(rates)

    def run(injector):
        sim = EngineSimulator(
            engine_config(max_nodes=2), initial_nodes=2, fault_injector=injector
        )
        return sim.run(trace)

    baseline = run(None)
    injector = FaultInjector(parse_fault_spec("straggle@100:n0:x=0.5:for=60"))
    faulted = run(injector)

    assert injector.stats.stragglers_injected == 1
    assert injector.stats.stragglers_recovered == 1
    # Identical before the fault fires...
    assert np.array_equal(baseline.p99_ms[:100], faulted.p99_ms[:100])
    # ...overloaded during the window (capacity 0.75x < offered load)...
    window = slice(110, 160)
    assert faulted.p99_ms[window].max() > baseline.p99_ms[window].max()
    # ...and drained back to baseline latency by the end of the run.
    assert faulted.p99_ms[-1] == pytest.approx(baseline.p99_ms[-1], rel=0.05)


def test_fault_ledger_accounts_for_whole_plan():
    """Injected + skipped always equals the plan, even when migration-
    targeted events find no move in flight."""
    trace = make_trace(np.full(40, 500.0))
    plan = parse_fault_spec(
        "crash@50:n1, straggle@80:n0:x=0.8:for=20, xfail@90, stall@95"
    )
    injector = FaultInjector(plan)
    sim = EngineSimulator(
        engine_config(max_nodes=4), initial_nodes=3, fault_injector=injector
    )
    sim.run(trace)  # no controller: no migration ever in flight

    planned = plan.counts()
    s = injector.stats
    assert s.crashes_injected + s.crashes_skipped == planned["crashes"]
    assert s.stragglers_injected == planned["stragglers"]
    assert (
        s.transfer_failures_injected + s.transfer_failures_skipped
        == planned["transfer_failures"]
    )
    assert s.stalls_injected + s.stalls_skipped == planned["stalls"]
    # Without a migration, the transfer faults must be skips, not drops.
    assert s.transfer_failures_skipped == 1
    assert s.stalls_skipped == 1
    assert s.injected_total() == 2
    assert set(s.as_dict()) == set(s.__dataclass_fields__)
