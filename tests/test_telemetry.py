"""Tests for repro.telemetry: metrics, tracer, timeline, exporters, report.

The contract under test is the one docs/OBSERVABILITY.md documents:
metrics accumulate, spans nest and close on exceptions, exports
round-trip exactly, a disabled handle leaves the engine bit-identical,
and ``repro.cli report`` renders a stable summary from a dump.
"""

import json

import numpy as np
import pytest

from repro.engine.simulator import EngineConfig, EngineSimulator
from repro.errors import ConfigurationError
from repro.telemetry import (
    Telemetry,
    active_telemetry,
    default_telemetry,
    resolve_telemetry,
    telemetry_session,
)
from repro.telemetry.export import (
    export,
    read_csv_ticks,
    read_jsonl,
    write_csv_ticks,
    write_jsonl,
)
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.report import forecast_windows, render_report, summarize
from repro.telemetry.tracer import Tracer
from repro.telemetry.timeline import TICK_FIELDS, TimelineRecorder
from repro.workloads.trace import LoadTrace


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.steps")
        counter.inc()
        counter.inc(3.0)
        assert registry.counter("engine.steps") is counter  # first-use identity
        assert counter.value == 4.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("controller.rate")
        gauge.set(10.0)
        gauge.set(7.5)
        assert gauge.value == 7.5
        assert gauge.updates == 2

    def test_histogram_buckets_and_stats(self):
        hist = Histogram("lat", buckets=(10.0, 100.0, 1000.0))
        for value in (5.0, 50.0, 50.0, 500.0, 5000.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1, 1]  # last is the +Inf bucket
        assert hist.count == 5
        assert hist.mean() == pytest.approx(5605.0 / 5)
        assert hist.quantile(0.5) == 100.0
        assert hist.quantile(1.0) == 1000.0  # +Inf reports last finite bound

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=(10.0, 10.0))
        with pytest.raises(ConfigurationError):
            Histogram("empty", buckets=())


class TestTracer:
    def test_spans_nest(self):
        tracer = Tracer()
        outer = tracer.begin("experiment", at=0.0)
        inner = tracer.begin("migration", at=1.0)
        tracer.end(inner, at=5.0)
        tracer.end(outer, at=9.0)
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1 and outer.depth == 0
        assert inner.duration == 4.0 and outer.duration == 9.0
        assert [s.status for s in tracer.spans] == ["ok", "ok"]

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("plan") as span:
                raise ValueError("boom")
        assert span.closed
        assert span.status == "error"
        assert span.attrs["error"] == "ValueError"

    def test_unclosed_children_abandoned_with_parent(self):
        tracer = Tracer()
        parent = tracer.begin("experiment", at=0.0)
        child = tracer.begin("migration", at=2.0)
        tracer.end(parent, at=10.0)
        assert child.status == "abandoned"
        assert child.end == 10.0

    def test_finish_all_never_negative_duration(self):
        tracer = Tracer()
        span = tracer.begin("migration", at=8580.0)
        tracer.finish_all()  # no timestamp available at export time
        assert span.status == "abandoned"
        assert span.duration == 0.0
        assert not tracer.open_spans

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("plan", at=0.0)
        tracer.end(span, at=3.0)
        span.finish(at=99.0, status="error")
        assert span.end == 3.0 and span.status == "ok"

    def test_sequence_timestamps_are_deterministic(self):
        stamps = []
        for _ in range(2):
            tracer = Tracer()
            a = tracer.begin("x")
            tracer.end(a)
            stamps.append((a.start, a.end))
        assert stamps[0] == stamps[1]


class TestTimeline:
    def test_event_rejects_reserved_fields(self):
        recorder = TimelineRecorder()
        with pytest.raises(ConfigurationError):
            recorder.event("decision", 0.0, kind="reactive")

    def test_machine_seconds_and_sla(self):
        recorder = TimelineRecorder()
        recorder.set_meta(sla_ms=500.0, dt_seconds=2.0)
        for t, p99, machines in ((0, 100.0, 3), (2, 700.0, 3), (4, 900.0, 4)):
            recorder.tick(
                t=float(t), offered=1.0, served=1.0, p50_ms=1.0, p95_ms=1.0,
                p99_ms=p99, machines=float(machines), reconfiguring=False,
            )
        assert recorder.machine_seconds() == 20.0
        assert recorder.sla_violation_seconds() == 4


def _sample_telemetry() -> Telemetry:
    tel = Telemetry()
    tel.set_meta(experiment="fixture", sla_ms=500.0, dt_seconds=1.0)
    for t in range(4):
        tel.timeline.tick(
            t=float(t), offered=100.0, served=99.5, p50_ms=3.0, p95_ms=40.0,
            p99_ms=600.0 if t == 2 else 80.0, machines=3.0,
            reconfiguring=t == 1, queue_depth=2.5, capacity=120.0,
        )
    tel.event("forecast", 1.0, interval=0, predicted=110.0, actual=100.0)
    tel.event("forecast", 2.0, interval=1, predicted=95.0, actual=100.0)
    tel.event("decision", 1.0, action="planned", machines_before=3, target=4)
    tel.event("fault", 2.0, fault="node-crash", outcome="injected", node=1)
    span = tel.tracer.begin("migration", at=1.0)
    span.attrs.update({"from": 3, "to": 4, "boost": 1.0})
    tel.tracer.end(span, at=3.0)
    tel.counter("engine.steps").inc(4.0)
    tel.gauge("controller.predicted_rate").set(95.0)
    tel.histogram("engine.p99_ms").observe(80.0)
    return tel


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tel = _sample_telemetry()
        path = tmp_path / "dump.jsonl"
        written = write_jsonl(tel, path)
        assert written == len(tel.records())
        dump = read_jsonl(path)
        assert dump.meta["experiment"] == "fixture"
        assert len(dump.ticks) == 4
        assert dump.ticks[0]["capacity"] == 120.0
        assert len(dump.events_of("forecast")) == 2
        assert dump.spans_named("migration")[0]["attrs"]["from"] == 3
        assert dump.counters["engine.steps"] == 4.0
        assert dump.gauges["controller.predicted_rate"] == 95.0
        assert dump.histograms["engine.p99_ms"]["count"] == 1
        # Byte-stable: the same telemetry serializes identically.
        second = tmp_path / "again.jsonl"
        write_jsonl(tel, second)
        assert path.read_text() == second.read_text()

    def test_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ConfigurationError):
            read_jsonl(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ConfigurationError):
            read_jsonl(path)

    def test_csv_round_trip_is_float_exact(self, tmp_path):
        tel = _sample_telemetry()
        path = tmp_path / "ticks.csv"
        assert write_csv_ticks(tel, path) == 4
        rows = read_csv_ticks(path)
        assert rows == [
            {field: float(tick[field]) for field in TICK_FIELDS}
            for tick in tel.timeline.ticks
        ]

    def test_csv_rejects_foreign_header(self, tmp_path):
        path = tmp_path / "foreign.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ConfigurationError):
            read_csv_ticks(path)

    def test_export_dispatches_on_suffix(self, tmp_path):
        tel = _sample_telemetry()
        assert export(tel, tmp_path / "t.csv") == 4  # tick rows
        assert export(tel, tmp_path / "t.jsonl") == len(tel.records())


class TestRuntime:
    def test_session_installs_and_restores(self):
        assert default_telemetry() is None
        tel = Telemetry()
        with telemetry_session(tel):
            assert active_telemetry() is tel
        assert default_telemetry() is None

    def test_disabled_default_is_not_active(self):
        with telemetry_session(Telemetry(enabled=False)):
            assert active_telemetry() is None

    def test_resolve_prefers_explicit(self):
        explicit = Telemetry()
        with telemetry_session(Telemetry()):
            assert resolve_telemetry(explicit) is explicit
        assert resolve_telemetry(Telemetry(enabled=False)) is None
        assert resolve_telemetry(None) is None


def _run_engine(telemetry):
    sim = EngineSimulator(
        EngineConfig(max_nodes=6, db_size_kb=700_000.0),
        initial_nodes=3,
        telemetry=telemetry,
    )
    sim.start_move(5)
    trace = LoadTrace(np.full(8, 700.0 * 30.0), slot_seconds=30.0)
    return sim, sim.run(trace)


class TestEngineIntegration:
    def test_disabled_handle_is_bit_identical(self):
        _, baseline = _run_engine(None)
        sim, result = _run_engine(Telemetry(enabled=False))
        assert sim.telemetry is None
        for column in ("time", "offered", "served", "p99_ms", "machines"):
            np.testing.assert_array_equal(
                getattr(result, column), getattr(baseline, column)
            )

    def test_enabled_handle_changes_nothing_and_records_everything(self):
        _, baseline = _run_engine(None)
        tel = Telemetry()
        sim, result = _run_engine(tel)
        for column in ("time", "offered", "served", "p99_ms", "machines"):
            np.testing.assert_array_equal(
                getattr(result, column), getattr(baseline, column)
            )
        # One tick per step, on the same clock as the result, even though
        # the steady-slot fast path collapsed most steps.
        assert sim.fast_slots > 0
        ticks = tel.timeline.ticks
        assert len(ticks) == len(result.time)
        np.testing.assert_array_equal(
            np.array([t["t"] for t in ticks]), result.time
        )
        assert tel.counter("engine.steps").value == len(result.time)
        spans = tel.tracer.named("migration")
        assert len(spans) == 1
        assert spans[0].status == "ok"
        assert spans[0].attrs["from"] == 3 and spans[0].attrs["to"] == 5


class TestReport:
    def test_forecast_windows_mape(self, tmp_path):
        tel = _sample_telemetry()
        path = tmp_path / "dump.jsonl"
        write_jsonl(tel, path)
        windows = forecast_windows(read_jsonl(path), window=2)
        assert len(windows) == 1
        assert windows[0].samples == 2
        assert windows[0].mape_pct == pytest.approx(7.5)  # (10% + 5%) / 2

    def test_summarize_counts(self, tmp_path):
        tel = _sample_telemetry()
        path = tmp_path / "dump.jsonl"
        write_jsonl(tel, path)
        summary = summarize(read_jsonl(path))
        assert summary.ticks == 4
        assert summary.violations == {"p50": 0, "p95": 0, "p99": 1}
        assert summary.machine_hours == pytest.approx(12.0 / 3600.0)
        assert summary.fault_counts == {"node-crash": 1}
        assert summary.decisions == 1
        assert len(summary.migration_spans) == 1

    def test_render_report_golden_sections(self, tmp_path):
        path = tmp_path / "dump.jsonl"
        write_jsonl(_sample_telemetry(), path)
        text = render_report(str(path))
        for section in (
            "Run overview",
            "SLA violations",
            "Migration spans",
            "Forecast error per window",
            "Fault events",
        ):
            assert section in text
        assert "3 -> 4" in text
        assert "node-crash" in text
        assert "ticks recorded" in text
