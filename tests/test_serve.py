"""Tests for the serving layer: clock, admission, engine, loadgen, control.

Everything here runs on the virtual clock — zero real sleeps; the
asyncio HTTP transport has its own suite in ``test_serve_http.py``.
"""

import numpy as np
import pytest

from repro.core.params import SystemParameters
from repro.engine.queueing import sample_latencies
from repro.engine.simulator import EngineConfig, EngineSimulator
from repro.errors import ConfigurationError
from repro.prediction.online import OnlinePredictor
from repro.prediction.spar import SPARPredictor
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    OnlineControlLoop,
    ServeSession,
    ServerEngine,
    VirtualClock,
    poisson_arrivals,
    spike_arrivals,
    trace_arrivals,
)
from repro.serve.loadgen import LoadGenerator, LoadgenReport, parse_profile
from repro.telemetry import Telemetry
from repro.workloads.spikes import FlashCrowd
from repro.workloads.trace import LoadTrace

SAT = 12.0  # small per-node saturation keeps arrival counts test-sized


def small_config(**kwargs):
    defaults = dict(max_nodes=4, saturation_rate_per_node=SAT, db_size_kb=5 * 1024)
    defaults.update(kwargs)
    return EngineConfig(**defaults)


def small_params(**kwargs):
    defaults = dict(interval_seconds=60.0, d_seconds=120.0)
    defaults.update(kwargs)
    return SystemParameters.from_saturation(SAT, **defaults)


def small_online(refit_every=12):
    spar = SPARPredictor(period=12, n_periods=2, n_recent=2, max_horizon=4)
    return OnlinePredictor(spar, refit_every=refit_every)


class TestVirtualClock:
    def test_events_fire_in_time_then_insertion_order(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(2.0, lambda: fired.append("late"))
        clock.call_at(1.0, lambda: fired.append("a"))
        clock.call_at(1.0, lambda: fired.append("b"))
        assert clock.run_until(5.0) == 3
        assert fired == ["a", "b", "late"]
        assert clock.now == 5.0

    def test_callbacks_can_reschedule(self):
        clock = VirtualClock()
        ticks = []

        def tick():
            ticks.append(clock.now)
            if clock.now < 3.0:
                clock.call_later(1.0, tick)

        clock.call_at(1.0, tick)
        clock.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_run_until_ignores_future_events(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(7.0, lambda: fired.append(7.0))
        assert clock.run_until(5.0) == 0
        assert fired == [] and clock.pending == 1
        assert clock.run() == 1
        assert clock.now == 7.0

    def test_scheduling_in_the_past_rejected(self):
        clock = VirtualClock(start=10.0)
        with pytest.raises(ConfigurationError):
            clock.call_at(9.0, lambda: None)
        with pytest.raises(ConfigurationError):
            clock.call_later(-1.0, lambda: None)


class TestAdmission:
    def test_accepts_below_limit(self):
        ctl = AdmissionController(AdmissionConfig(queue_limit_seconds=5.0))
        decision = ctl.decide(0, 4.9)
        assert decision.accepted and decision.status == 200
        assert decision.retry_after_s == 0.0
        assert ctl.accepted == 1 and ctl.rejected == 0

    def test_rejects_above_limit_with_retry_hint(self):
        ctl = AdmissionController(
            AdmissionConfig(queue_limit_seconds=5.0, retry_after_floor_s=1.0)
        )
        decision = ctl.decide(2, 9.5)
        assert not decision.accepted and decision.status == 503
        assert decision.retry_after_s == pytest.approx(4.5)
        assert decision.retry_after_whole_seconds == 5
        # Barely-over rejects still carry the floor hint.
        assert ctl.decide(2, 5.01).retry_after_s == pytest.approx(1.0)
        ctl.decide(0, 0.0)
        assert ctl.reject_rate() == pytest.approx(2 / 3)

    def test_counters_reach_telemetry(self):
        telemetry = Telemetry()
        ctl = AdmissionController(AdmissionConfig(queue_limit_seconds=1.0), telemetry)
        ctl.decide(0, 0.5)
        ctl.decide(0, 2.0)
        assert telemetry.counter("serve.admitted").value == 1
        assert telemetry.counter("serve.rejected").value == 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(queue_limit_seconds=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(retry_after_floor_s=-1.0)


class TestLatencySampling:
    def test_quantiles_match_mixture(self):
        sim = EngineSimulator(small_config(), initial_nodes=2)
        sim.step(10.0)
        components = sim.last_latency_components
        assert components is not None
        u = np.linspace(0.05, 0.95, 19)
        samples = sample_latencies(components, u)
        assert samples.shape == u.shape
        assert np.all(np.diff(samples) >= 0)  # quantile function is monotone
        assert np.all(samples > 0)

    def test_empty_and_extreme_uniforms(self):
        sim = EngineSimulator(small_config(), initial_nodes=1)
        sim.step(5.0)
        components = sim.last_latency_components
        assert sample_latencies(components, np.empty(0)).size == 0
        extremes = sample_latencies(components, np.array([0.0, 1.0]))
        assert np.all(np.isfinite(extremes))


class TestServerEngine:
    def test_accepted_requests_complete_on_next_tick(self):
        engine = ServerEngine(small_config(), initial_nodes=2, seed=3)
        outcomes = []
        for _ in range(20):
            decision = engine.submit(outcomes.append, now=0.5)
            assert decision.accepted
        assert outcomes == []  # nothing resolves before the tick
        record = engine.tick()
        assert record["admitted"] == 20.0 and record["rejected"] == 0.0
        assert len(outcomes) == 20
        for outcome in outcomes:
            assert outcome.accepted and outcome.status == 200
            assert outcome.latency_ms > 0
            assert outcome.completed_at > outcome.submitted_at

    def test_slot_must_be_multiple_of_tick(self):
        with pytest.raises(ConfigurationError):
            ServerEngine(small_config(), slot_seconds=1.5)

    def test_healthz_shape(self):
        engine = ServerEngine(small_config(), initial_nodes=1)
        engine.tick()
        health = engine.healthz()
        assert health["status"] == "ok"
        assert health["machines"] == 1 and health["ticks"] == 1
        assert health["moves_started"] == 0 and health["moves_completed"] == 0

    def test_rejects_fail_fast_with_retry_hint(self):
        engine = ServerEngine(
            small_config(),
            initial_nodes=1,
            admission=AdmissionConfig(queue_limit_seconds=0.001),
            seed=1,
        )
        outcomes = []
        for _ in range(50):
            engine.submit(outcomes.append)
        rejected = [o for o in outcomes if not o.accepted]
        assert rejected, "tiny queue limit must shed in-tick pileup"
        for outcome in rejected:
            assert outcome.status == 503
            assert outcome.retry_after_s >= 1.0
            assert outcome.completed_at == outcome.submitted_at

    def test_routing_follows_data_shares(self):
        engine = ServerEngine(small_config(), initial_nodes=2, seed=0)
        nodes = {engine.route() // engine.sim.config.partitions_per_node
                 for _ in range(200)}
        assert nodes == {0, 1}  # only active nodes receive traffic

    def test_deterministic_given_seed(self):
        def run():
            engine = ServerEngine(small_config(), initial_nodes=2, seed=42)
            arrivals = poisson_arrivals(8.0, 120.0, seed=5)
            session = ServeSession(engine, arrivals)
            report = session.run(120.0)
            return report.summary(), engine.healthz()

        assert run() == run()


class TestLoadgenSchedules:
    def test_poisson_rate_and_determinism(self):
        a = poisson_arrivals(50.0, 100.0, seed=1)
        b = poisson_arrivals(50.0, 100.0, seed=1)
        assert np.array_equal(a, b)
        assert np.all((a >= 0) & (a < 100.0))
        assert len(a) == pytest.approx(5000, rel=0.1)
        assert poisson_arrivals(0.0, 100.0).size == 0

    def test_trace_replay_tracks_slot_counts(self):
        trace = LoadTrace(np.array([600.0, 0.0, 1200.0]), slot_seconds=60.0)
        times = trace_arrivals(trace, seed=2)
        assert np.all(np.diff(times) >= 0)
        first = np.sum(times < 60.0)
        second = np.sum((times >= 60.0) & (times < 120.0))
        third = np.sum(times >= 120.0)
        assert second == 0
        assert first == pytest.approx(600, rel=0.2)
        assert third == pytest.approx(1200, rel=0.2)

    def test_spike_concentrates_arrivals(self):
        spike = FlashCrowd(
            start_seconds=300.0, ramp_seconds=30.0, plateau_seconds=120.0,
            decay_seconds=60.0, magnitude=5.0,
        )
        times = spike_arrivals(10.0, 600.0, spike, seed=3)
        during = np.sum((times >= 330.0) & (times < 450.0)) / 120.0
        before = np.sum(times < 300.0) / 300.0
        assert during > 3.0 * before

    def test_parse_profile_variants(self):
        assert parse_profile("poisson:rate=20", 30.0, seed=1).size > 0
        spike = parse_profile("spike:rate=5,at=60,magnitude=4", 300.0, seed=1)
        assert spike.size > 0
        trace = parse_profile("trace:kind=b2w,days=1,rate=3,slot=300", 3600.0, seed=1)
        assert np.all(trace < 3600.0)

    def test_parse_profile_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_profile("sawtooth:rate=5", 60.0)
        with pytest.raises(ConfigurationError):
            parse_profile("poisson:rate=5,bogus=1", 60.0)
        with pytest.raises(ConfigurationError):
            parse_profile("poisson:rate", 60.0)
        with pytest.raises(ConfigurationError):
            parse_profile("trace:kind=nyse", 60.0)

    def test_unsorted_arrivals_rejected(self):
        engine = ServerEngine(small_config())
        with pytest.raises(ConfigurationError):
            LoadGenerator(engine, np.array([2.0, 1.0]), VirtualClock())


class TestLoadgenReport:
    def test_percentiles_and_summary(self):
        report = LoadgenReport(duration_s=10.0)
        for latency in (10.0, 20.0, 30.0, 40.0):
            report.record(_ok(latency))
        report.record(_shed(3.0))
        assert report.offered == 5 and report.accepted == 4 and report.rejected == 1
        assert report.reject_rate == pytest.approx(0.2)
        assert report.throughput_per_s == pytest.approx(0.4)
        assert report.latency_percentile(50.0) == pytest.approx(25.0)
        summary = report.summary()
        assert summary["max_retry_after_s"] == 3.0
        text = report.format_report()
        assert "rejected 1" in text and "retry-after" in text

    def test_empty_report_is_quiet(self):
        report = LoadgenReport()
        assert report.reject_rate == 0.0
        assert report.latency_percentile(99.0) == 0.0
        assert report.summary()["p99_ms"] == 0.0


def _ok(latency_ms):
    from repro.serve import TxnOutcome

    return TxnOutcome(True, 200, 0, 0.0, latency_ms / 1000.0, latency_ms)


def _shed(retry_after):
    from repro.serve import TxnOutcome

    return TxnOutcome(False, 503, 0, 0.0, 0.0, 0.0, retry_after_s=retry_after)


class TestSheddingUnderSpike:
    def make_session(self):
        engine = ServerEngine(
            small_config(),
            initial_nodes=1,
            admission=AdmissionConfig(queue_limit_seconds=5.0),
            seed=11,
        )
        spike = FlashCrowd(
            start_seconds=120.0, ramp_seconds=30.0, plateau_seconds=180.0,
            decay_seconds=60.0, magnitude=6.0,
        )
        arrivals = spike_arrivals(6.0, 600.0, spike, seed=13)
        return engine, ServeSession(engine, arrivals)

    def test_shedding_bounds_queues(self):
        engine, session = self.make_session()
        report = session.run(600.0)
        assert report.rejected > 0, "open-loop spike must trigger shedding"
        assert report.accepted > 0
        # Shedding (limit 5s), not the engine cap (30s), bounds the queue:
        # the estimate can overshoot by at most one tick's arrivals.
        assert engine.max_node_queue_seconds < 10.0
        assert engine.max_node_queue_seconds < engine.sim.config.max_queue_seconds
        assert max(report.retry_after_s) >= 1.0
        # After the spike drains the server reports healthy again.
        assert engine.healthz()["status"] == "ok"

    def test_spike_session_is_deterministic(self):
        def run():
            engine, session = self.make_session()
            report = session.run(600.0)
            return report.summary(), engine.healthz()

        assert run() == run()


class TestOnlineControlLoopUnit:
    def test_interval_must_be_multiple_of_slot(self):
        with pytest.raises(ConfigurationError):
            OnlineControlLoop(
                small_params(), small_online(), measurement_slot_seconds=45.0
            )

    def test_horizon_capped_by_predictor(self):
        with pytest.raises(ConfigurationError):
            OnlineControlLoop(
                small_params(), small_online(),
                measurement_slot_seconds=60.0, horizon=99,
            )

    def test_cold_start_scales_out_reactively(self):
        loop = OnlineControlLoop(
            small_params(), small_online(),
            measurement_slot_seconds=60.0, max_machines=4,
        )
        sim = EngineSimulator(small_config(), initial_nodes=1)
        # One interval of load far above a single node's target rate.
        loop.on_slot(sim, 0, measured_count=20.0 * 60.0)
        assert loop.cold_start_decisions == 1
        assert loop.predictive_decisions == 0
        assert not loop.is_fitted
        assert loop.decision_log[-1].kind == "cold-start-reactive"
        assert sim.migration_active or sim.machines_allocated > 1

    def test_cold_start_never_scales_in(self):
        loop = OnlineControlLoop(
            small_params(), small_online(),
            measurement_slot_seconds=60.0, max_machines=4,
        )
        sim = EngineSimulator(small_config(), initial_nodes=3)
        loop.on_slot(sim, 0, measured_count=1.0)  # nearly idle
        assert loop.decision_log == []
        assert sim.machines_allocated == 3


class TestServeEndToEnd:
    """Acceptance scenario: server + loadgen + online SPAR control loop.

    One virtual-clock run (zero real sleeps) drives the full lifecycle:
    cold-start reactive fallback, first SPAR fit at ``min_training``,
    refits on cadence, predictive reconfigurations completing mid-run,
    and admission shedding under an unpredicted flash crowd.
    """

    N_SLOTS = 110
    FIT_SLOT = 62  # min_training for the small SPAR above

    def build(self):
        online = small_online(refit_every=12)
        assert online.min_training == self.FIT_SLOT
        loop = OnlineControlLoop(
            small_params(), online,
            measurement_slot_seconds=60.0, horizon=4, max_machines=4,
        )
        engine = ServerEngine(
            small_config(),
            initial_nodes=1,
            slot_seconds=60.0,
            admission=AdmissionConfig(queue_limit_seconds=5.0),
            controller=loop,
            seed=7,
            telemetry=Telemetry(),
        )
        t = np.arange(self.N_SLOTS, dtype=float)
        rates = 4.0 + 3.0 * np.sin(2 * np.pi * t / 12.0)
        rates[66:] = 10.0 + 7.0 * np.sin(2 * np.pi * t[66:] / 12.0)
        rates[80:86] *= 5.0  # unpredicted flash crowd, post-fit
        trace = LoadTrace(rates * 60.0, slot_seconds=60.0, name="e2e")
        arrivals = trace_arrivals(trace, seed=9)
        return engine, loop, ServeSession(engine, arrivals)

    @pytest.fixture(scope="class")
    def outcome(self):
        engine, loop, session = self.build()
        report = session.run(self.N_SLOTS * 60.0)
        return engine, loop, report

    def test_lifecycle_cold_start_fit_refit(self, outcome):
        _, loop, _ = outcome
        assert loop.cold_start_decisions >= 1
        assert loop.is_fitted
        assert loop.refits >= 2  # first fit plus at least one cadence refit
        assert loop.intervals_observed == self.N_SLOTS
        kinds = [d.kind for d in loop.decision_log]
        assert kinds[0] == "cold-start-reactive"
        # Every pre-fit decision is reactive; predictive ones only after.
        first_fit_time = self.FIT_SLOT * 60.0
        for decision in loop.decision_log:
            if decision.kind == "cold-start-reactive":
                assert decision.sim_time <= first_fit_time
            else:
                assert decision.sim_time > first_fit_time

    def test_predictive_reconfiguration_completes_mid_run(self, outcome):
        engine, loop, _ = outcome
        assert loop.predictive_decisions >= 1
        assert any(d.kind in ("planned", "fallback") for d in loop.decision_log)
        assert engine.moves_completed >= 2
        assert not engine.sim.migration_active  # all moves ran to completion

    def test_spike_sheds_and_queues_stay_bounded(self, outcome):
        engine, _, report = outcome
        assert report.rejected > 0
        assert report.reject_rate < 0.5  # shedding, not collapse
        assert engine.max_node_queue_seconds < 10.0
        assert engine.max_node_queue_seconds < engine.sim.config.max_queue_seconds

    def test_telemetry_counters_track_the_run(self, outcome):
        engine, loop, report = outcome
        telemetry = engine.telemetry
        assert telemetry.counter("serve.admitted").value == report.accepted
        assert telemetry.counter("serve.rejected").value == report.rejected
        assert telemetry.counter("control.refits").value == loop.refits
        assert telemetry.counter("control.decisions").value == len(loop.decision_log)
        assert telemetry.histogram("serve.latency_ms").count == report.accepted


class TestObservabilityBitIdentity:
    """Sampling and perf spans must be invisible to the simulation.

    Two identical workloads — one instrumented with a time-series store,
    an active perf recorder and a checkpoint cadence, one bare — must
    produce byte-identical results everywhere the run can be observed:
    the loadgen report, the latency stream, the telemetry records and
    the checkpoint digest.  This is the invariant that lets operators
    leave live observability on in production runs.
    """

    def _run(self, tmp_path, tag, *, instrumented):
        import json

        from repro.serve.checkpoint import CheckpointConfig
        from repro.telemetry import PerfRecorder, TimeSeriesStore, perf_session

        engine = ServerEngine(
            small_config(),
            initial_nodes=2,
            admission=AdmissionConfig(queue_limit_seconds=2.0),
            seed=11,
            telemetry=Telemetry(),
        )
        arrivals = poisson_arrivals(240.0, 120.0, seed=13)
        path = str(tmp_path / f"{tag}.ckpt")
        store = TimeSeriesStore() if instrumented else None
        session = ServeSession(
            engine,
            arrivals,
            checkpoint=CheckpointConfig(path, every_s=60.0),
            timeseries=store,
        )
        perf = PerfRecorder() if instrumented else None
        with perf_session(perf):
            report = session.run(120.0)
        if instrumented:
            assert store.samples_taken > 0, "sampling must actually run"
            assert perf.stage("engine.tick") is not None
        with open(path) as f:
            checkpoint = json.load(f)
        return report, engine, checkpoint

    def test_instrumented_run_is_bit_identical(self, tmp_path):
        bare_report, bare_engine, bare_ckpt = self._run(
            tmp_path, "bare", instrumented=False
        )
        inst_report, inst_engine, inst_ckpt = self._run(
            tmp_path, "inst", instrumented=True
        )
        assert inst_report.summary() == bare_report.summary()
        assert inst_report.latencies_ms == bare_report.latencies_ms

        def scrub(records):
            # The checkpoint event embeds the file path, which necessarily
            # differs between the two runs; everything else must match.
            return [
                {k: ("<path>" if k == "path" else v) for k, v in r.items()}
                for r in records
            ]

        assert scrub(inst_engine.telemetry.records()) == scrub(
            bare_engine.telemetry.records()
        )
        assert inst_ckpt["sha256"] == bare_ckpt["sha256"]
