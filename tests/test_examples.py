"""Smoke tests: the quick example scripts must run cleanly end to end.

Only the fast examples run here (the capacity-simulation and engine-day
examples take a minute or more each; the benchmark suite covers their
underlying experiments at full scale).
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


class TestQuickstart:
    def test_runs_and_reports(self):
        out = run_example("quickstart.py")
        assert "Optimal plan" in out
        assert "scale-out" in out
        assert "Migration schedule" in out
        # The plan is built on a smoothed forecast; the raw noisy load
        # may poke above max capacity for an interval or two at most.
        line = next(
            l for l in out.splitlines()
            if "Intervals with load above max effective capacity" in l
        )
        assert int(line.rsplit(":", 1)[1]) <= 3


class TestBenchmarkReplay:
    def test_runs_and_conserves_stock(self):
        out = run_example("benchmark_replay.py")
        assert "stock-conservation violations: 0" in out
        assert "lost: 0" in out
        assert "max/min = 1.0" in out


class TestAllExamplesExist:
    def test_expected_scripts_present(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "b2w_retail_day.py",
            "black_friday_planning.py",
            "forecasting_workloads.py",
            "benchmark_replay.py",
            "composite_provisioning.py",
        } <= names
