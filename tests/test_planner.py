"""Tests for the dynamic-programming planner (Algorithms 1-3)."""

import math

import numpy as np
import pytest

import repro.core.capacity as cap
from repro.core.planner import Move, MovePlan, Planner, plan_cost_lower_bound
from repro.errors import ConfigurationError, InfeasiblePlanError


def reference_cost(load, initial, planner):
    """Slow reference: the paper's Algorithms 2/3 as literal recursion.

    Independent implementation (top-down, dict memo) used to verify the
    production bottom-up solver.
    """
    params = planner.params
    q = params.q
    horizon = len(load) - 1
    z = max(initial, max(1, math.ceil(max(load) / q)))
    memo = {}

    def cost(t, after):
        if t < 0 or (t == 0 and after != initial):
            return math.inf
        if load[t] > q * after + 1e-9:
            return math.inf
        if (t, after) in memo:
            return memo[(t, after)]
        if t == 0:
            memo[(t, after)] = float(after)
            return float(after)
        best = math.inf
        for before in range(1, z + 1):
            duration = planner.move_duration(before, after)
            start = t - duration
            if start < 0:
                continue
            feasible = True
            for i in range(1, duration + 1):
                eff = cap.effective_capacity(before, after, i / duration, params)
                if load[start + i] > eff + 1e-9:
                    feasible = False
                    break
            if not feasible:
                continue
            value = cost(start, before) + planner.move_cost(before, after)
            best = min(best, value)
        memo[(t, after)] = best
        return best

    finite = [
        (cost(horizon, final), final) for final in range(1, z + 1)
    ]
    finite = [(c, f) for c, f in finite if math.isfinite(c)]
    if not finite:
        return None
    # Algorithm 1 picks the FEWEST feasible final machines, not min cost.
    return min(finite, key=lambda cf: cf[1])


def check_plan_feasible(plan: MovePlan, load, params):
    """Every interval of every move satisfies the effective-capacity check."""
    assert plan.moves, "plan must tile the horizon"
    assert plan.moves[0].start == 0 or plan.moves[0].start >= 0
    t_cursor = 0
    for move in plan.moves:
        assert move.start == t_cursor
        assert move.end > move.start
        duration = move.end - move.start
        for i in range(1, duration + 1):
            eff = cap.effective_capacity(move.before, move.after, i / duration, params)
            assert load[move.start + i] <= eff + 1e-6
        t_cursor = move.end
    assert t_cursor == plan.horizon


class TestBasicPlans:
    def test_flat_load_holds(self, params):
        planner = Planner(params, max_machines=8)
        load = np.full(7, 1.5 * params.q)
        plan = planner.best_moves(load, initial_machines=2)
        assert plan.final_machines == 2
        assert plan.first_real_move() is None
        assert plan.cost == pytest.approx(2.0 * 7)

    def test_ramp_scales_out(self, params):
        planner = Planner(params, max_machines=16)
        load = np.linspace(200, 2500, 13)
        plan = planner.best_moves(load, initial_machines=1)
        assert plan.final_machines == params.machines_for_load(2500.0)
        check_plan_feasible(plan, load, params)

    def test_declining_load_scales_in(self, params):
        planner = Planner(params, max_machines=16)
        load = np.linspace(2500, 200, 13)
        plan = planner.best_moves(load, initial_machines=9)
        assert plan.final_machines == 1
        check_plan_feasible(plan, load, params)

    def test_scale_out_delayed_as_late_as_possible(self, params):
        planner = Planner(params, max_machines=8)
        q = params.q
        # Load needs 2 machines only at the final interval.
        load = np.array([0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 1.5]) * q
        plan = planner.best_moves(load, initial_machines=1)
        first = plan.first_real_move()
        assert first is not None
        # The move ends exactly when the load arrives, no earlier.
        assert first.end == 6

    def test_final_machines_is_fewest_feasible(self, params):
        planner = Planner(params, max_machines=8)
        q = params.q
        # Peak mid-horizon, low at the end: planner must scale back in.
        load = np.array([1.5, 2.5, 3.5, 3.5, 2.0, 0.9, 0.5]) * q
        plan = planner.best_moves(load, initial_machines=2)
        assert plan.final_machines == 1

    def test_required_final_machines(self, params):
        planner = Planner(params, max_machines=8)
        load = np.full(9, 0.5 * params.q)
        plan = planner.best_moves(load, 2, required_final_machines=4)
        assert plan.final_machines == 4

    def test_required_final_machines_infeasible(self, params):
        planner = Planner(params, max_machines=8)
        load = np.full(9, 0.5 * params.q)
        with pytest.raises(InfeasiblePlanError):
            planner.best_moves(load, 2, required_final_machines=0)


class TestInfeasibility:
    def test_immediate_overload_is_infeasible(self, params):
        planner = Planner(params, max_machines=8)
        load = np.full(5, 5.0 * params.q)
        with pytest.raises(InfeasiblePlanError):
            planner.best_moves(load, initial_machines=1)

    def test_plan_returns_none_when_infeasible(self, params):
        planner = Planner(params, max_machines=8)
        load = np.full(5, 5.0 * params.q)
        assert planner.plan(load, 1) is None

    def test_flash_crowd_too_fast_to_scale(self, params):
        planner = Planner(params, max_machines=16)
        q = params.q
        # Jump from 1 to 10 machines' worth in one interval: no feasible
        # migration can add that much effective capacity in time.
        load = np.array([0.9, 9.5, 9.5, 9.5]) * q
        with pytest.raises(InfeasiblePlanError):
            planner.best_moves(load, initial_machines=1)

    def test_load_beyond_max_machines_is_infeasible(self, params):
        planner = Planner(params, max_machines=4)
        load = np.full(6, 6.0 * params.q)
        with pytest.raises(InfeasiblePlanError):
            planner.best_moves(load, initial_machines=4)


class TestValidation:
    def test_rejects_short_load(self, params):
        planner = Planner(params)
        with pytest.raises(ConfigurationError):
            planner.best_moves(np.array([1.0]), 1)

    def test_rejects_negative_load(self, params):
        planner = Planner(params)
        with pytest.raises(ConfigurationError):
            planner.best_moves(np.array([1.0, -2.0, 1.0]), 1)

    def test_rejects_bad_initial(self, params):
        planner = Planner(params)
        with pytest.raises(ConfigurationError):
            planner.best_moves(np.array([1.0, 1.0]), 0)

    def test_rejects_initial_above_max(self, params):
        planner = Planner(params, max_machines=4)
        with pytest.raises(ConfigurationError):
            planner.best_moves(np.array([1.0, 1.0]), 5)

    def test_rejects_bad_max_machines(self, params):
        with pytest.raises(ConfigurationError):
            Planner(params, max_machines=0)


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_recursion(self, params, seed):
        rng = np.random.default_rng(seed)
        horizon = int(rng.integers(4, 9))
        load = rng.uniform(0.2, 4.0, horizon + 1) * params.q
        initial = int(rng.integers(1, 5))
        load[0] = min(load[0], initial * params.q * 0.95)
        planner = Planner(params, max_machines=10)
        expected = reference_cost(load, initial, planner)
        if expected is None:
            with pytest.raises(InfeasiblePlanError):
                planner.best_moves(load, initial)
            return
        plan = planner.best_moves(load, initial)
        ref_cost, ref_final = expected
        assert plan.final_machines == ref_final
        assert plan.cost == pytest.approx(ref_cost)
        check_plan_feasible(plan, load, params)


class TestPlanStructure:
    def test_moves_tile_horizon(self, params):
        planner = Planner(params, max_machines=8)
        load = np.linspace(0.5, 3.5, 10) * params.q
        plan = planner.best_moves(load, 1)
        check_plan_feasible(plan, load, params)

    def test_coalesced_merges_noops(self, params):
        planner = Planner(params, max_machines=8)
        load = np.full(9, 1.2 * params.q)
        plan = planner.best_moves(load, 2)
        coalesced = plan.coalesced()
        assert len(coalesced) == 1
        assert coalesced[0].start == 0 and coalesced[0].end == 8

    def test_machines_at(self, params):
        planner = Planner(params, max_machines=8)
        q = params.q
        load = np.array([0.5, 0.5, 0.5, 1.5, 1.5, 1.5]) * q
        plan = planner.best_moves(load, 1)
        assert plan.machines_at(0) == 1
        assert plan.machines_at(plan.horizon) == 2

    def test_cost_at_least_lower_bound(self, params):
        planner = Planner(params, max_machines=10)
        rng = np.random.default_rng(7)
        load = (np.linspace(0.3, 2.8, 10) + rng.uniform(-0.05, 0.05, 10)) * params.q
        plan = planner.best_moves(load, 1)
        move_slack = sum(
            abs(m.after - m.before) / 2 for m in plan.moves if not m.is_noop
        )
        assert plan.cost >= plan_cost_lower_bound(load, params) - move_slack - 1e-9

    def test_move_str_and_properties(self):
        move = Move(start=2, end=4, before=3, after=5)
        assert not move.is_noop
        assert move.duration == 2
        assert "scale-out" in str(move)
        hold = Move(start=0, end=1, before=3, after=3)
        assert hold.is_noop
        assert "hold" in str(hold)
