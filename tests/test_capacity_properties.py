"""Property-based tests for the capacity/migration model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.capacity as cap
from repro.core.params import SystemParameters

PARAMS = SystemParameters(interval_seconds=300.0, partitions_per_node=6)

sizes = st.integers(min_value=1, max_value=40)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(before=sizes, after=sizes)
@settings(max_examples=200, deadline=None)
def test_direction_symmetry(before, after):
    """Scale-in mirrors scale-out in every quantity."""
    assert cap.max_parallel_transfers(before, after) == cap.max_parallel_transfers(
        after, before
    )
    assert cap.fraction_of_database_moved(before, after) == pytest.approx(
        cap.fraction_of_database_moved(after, before)
    )
    assert cap.move_time_seconds(before, after, PARAMS) == pytest.approx(
        cap.move_time_seconds(after, before, PARAMS)
    )
    assert cap.average_machines_allocated(before, after) == pytest.approx(
        cap.average_machines_allocated(after, before)
    )


@given(before=sizes, after=sizes)
@settings(max_examples=200, deadline=None)
def test_bounds(before, after):
    smaller, larger = min(before, after), max(before, after)
    assert 0.0 <= cap.fraction_of_database_moved(before, after) < 1.0
    avg = cap.average_machines_allocated(before, after)
    assert smaller <= avg <= larger
    if before != after:
        assert cap.move_time_seconds(before, after, PARAMS) > 0
        assert cap.move_time_intervals(before, after, PARAMS) >= 1
        assert cap.move_cost(before, after, PARAMS) > 0


@given(before=sizes, after=sizes, f=fractions)
@settings(max_examples=200, deadline=None)
def test_effective_capacity_between_endpoints(before, after, f):
    value = cap.effective_capacity(before, after, f, PARAMS)
    lo = min(cap.capacity(before, PARAMS), cap.capacity(after, PARAMS))
    hi = max(cap.capacity(before, PARAMS), cap.capacity(after, PARAMS))
    assert lo - 1e-9 <= value <= hi + 1e-9


@given(before=sizes, after=sizes)
@settings(max_examples=100, deadline=None)
def test_effective_capacity_below_allocated(before, after):
    """Mid-move, effective capacity never exceeds either endpoint's full
    capacity — the under-provisioning danger Figure 4 illustrates."""
    for i in range(1, 10):
        f = i / 10
        value = cap.effective_capacity(before, after, f, PARAMS)
        assert value <= cap.capacity(max(before, after), PARAMS) + 1e-9


@given(before=sizes, after=sizes)
@settings(max_examples=100, deadline=None)
def test_more_partitions_never_slower(before, after):
    p1 = SystemParameters(partitions_per_node=1)
    p4 = SystemParameters(partitions_per_node=4)
    assert cap.move_time_seconds(before, after, p4) <= cap.move_time_seconds(
        before, after, p1
    ) + 1e-9


@given(base=st.integers(1, 20), growth=st.integers(1, 20))
@settings(max_examples=100, deadline=None)
def test_bigger_moves_move_more_data(base, growth):
    small = cap.fraction_of_database_moved(base, base + growth)
    bigger = cap.fraction_of_database_moved(base, base + growth + 1)
    assert bigger > small
