"""Tests for the migration/capacity model (Equations 2-7, Algorithm 4)."""

import math

import pytest

import repro.core.capacity as cap
from repro.core.params import SystemParameters
from repro.errors import ConfigurationError


class TestMaxParallelTransfers:
    """Equation 2."""

    def test_noop_move(self):
        assert cap.max_parallel_transfers(4, 4) == 0

    def test_scale_out_limited_by_new_machines(self):
        # B=3, A=5: min(3, 2) = 2.
        assert cap.max_parallel_transfers(3, 5) == 2

    def test_scale_out_limited_by_senders(self):
        # B=3, A=14: min(3, 11) = 3.
        assert cap.max_parallel_transfers(3, 14) == 3

    def test_scale_in_symmetric(self):
        assert cap.max_parallel_transfers(14, 3) == cap.max_parallel_transfers(3, 14)
        assert cap.max_parallel_transfers(5, 3) == 2

    def test_partitions_multiply(self):
        assert cap.max_parallel_transfers(3, 14, partitions_per_node=6) == 18

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            cap.max_parallel_transfers(0, 3)
        with pytest.raises(ConfigurationError):
            cap.max_parallel_transfers(3, 5, partitions_per_node=0)


class TestFractionMoved:
    def test_noop(self):
        assert cap.fraction_of_database_moved(5, 5) == 0.0

    def test_scale_out(self):
        assert cap.fraction_of_database_moved(3, 14) == pytest.approx(1 - 3 / 14)
        assert cap.fraction_of_database_moved(1, 2) == pytest.approx(0.5)

    def test_symmetric(self):
        assert cap.fraction_of_database_moved(14, 3) == cap.fraction_of_database_moved(3, 14)


class TestMoveTime:
    """Equation 3."""

    def test_noop_is_zero(self, params):
        assert cap.move_time_seconds(4, 4, params) == 0.0
        assert cap.move_time_intervals(4, 4, params) == 0

    def test_scale_out_formula(self, single_partition_params):
        p = single_partition_params
        # T(3, 14) = D / 3 * (1 - 3/14).
        expected = p.d_seconds / 3 * (1 - 3 / 14)
        assert cap.move_time_seconds(3, 14, p) == pytest.approx(expected)

    def test_partitions_divide_time(self):
        p1 = SystemParameters(partitions_per_node=1)
        p6 = SystemParameters(partitions_per_node=6)
        assert cap.move_time_seconds(3, 14, p6) == pytest.approx(
            cap.move_time_seconds(3, 14, p1) / 6
        )

    def test_scale_in_symmetric(self, params):
        assert cap.move_time_seconds(14, 3, params) == pytest.approx(
            cap.move_time_seconds(3, 14, params)
        )

    def test_intervals_round_up_and_floor_at_one(self, params):
        # Even a tiny move occupies at least one planner interval.
        assert cap.move_time_intervals(9, 10, params) >= 1
        seconds = cap.move_time_seconds(3, 14, params)
        assert cap.move_time_intervals(3, 14, params) == math.ceil(
            seconds / params.interval_seconds
        )


class TestAverageMachinesAllocated:
    """Algorithm 4 (Appendix B)."""

    def test_noop(self):
        assert cap.average_machines_allocated(4, 4) == 4.0

    def test_case1_all_at_once(self):
        # s >= delta: full allocation for the whole move.
        assert cap.average_machines_allocated(3, 5) == 5.0
        assert cap.average_machines_allocated(4, 8) == 8.0  # delta == s boundary

    def test_case2_multiple_blocks(self):
        # 3 -> 9: delta = 6 = 2 blocks; avg = (2*3 + 9) / 2 = 7.5.
        assert cap.average_machines_allocated(3, 9) == pytest.approx(7.5)

    def test_case3_three_phases_paper_example(self):
        # 3 -> 14 from the paper: phases give 111/11.
        assert cap.average_machines_allocated(3, 14) == pytest.approx(111 / 11)

    def test_symmetric_in_direction(self):
        for before, after in ((3, 14), (2, 7), (4, 9), (5, 6)):
            assert cap.average_machines_allocated(before, after) == pytest.approx(
                cap.average_machines_allocated(after, before)
            )

    def test_bounded_by_cluster_sizes(self):
        for before in range(1, 12):
            for after in range(1, 12):
                avg = cap.average_machines_allocated(before, after)
                assert min(before, after) <= avg <= max(before, after)


class TestMoveCost:
    """Equation 4."""

    def test_noop_costs_one_interval(self, params):
        assert cap.move_cost(4, 4, params) == 4.0

    def test_cost_is_time_times_average(self, params):
        intervals = cap.move_time_intervals(3, 14, params)
        assert cap.move_cost(3, 14, params) == pytest.approx(
            intervals * cap.average_machines_allocated(3, 14)
        )


class TestCapacity:
    """Equations 5 and 7."""

    def test_cap_linear(self, params):
        assert cap.capacity(0, params) == 0.0
        assert cap.capacity(3, params) == pytest.approx(3 * params.q)
        with pytest.raises(ConfigurationError):
            cap.capacity(-1, params)

    def test_effective_capacity_noop(self, params):
        assert cap.effective_capacity(4, 4, 0.5, params) == pytest.approx(
            cap.capacity(4, params)
        )

    def test_effective_capacity_endpoints_scale_out(self, params):
        start = cap.effective_capacity(3, 14, 0.0, params)
        end = cap.effective_capacity(3, 14, 1.0, params)
        assert start == pytest.approx(cap.capacity(3, params))
        assert end == pytest.approx(cap.capacity(14, params))

    def test_effective_capacity_endpoints_scale_in(self, params):
        start = cap.effective_capacity(14, 3, 0.0, params)
        end = cap.effective_capacity(14, 3, 1.0, params)
        assert start == pytest.approx(cap.capacity(14, params))
        assert end == pytest.approx(cap.capacity(3, params))

    def test_effective_capacity_is_not_linear(self, params):
        # Halfway through 3 -> 14, capacity is well below (3+14)/2 machines.
        mid = cap.effective_capacity(3, 14, 0.5, params)
        linear = cap.capacity(3, params) + 0.5 * (
            cap.capacity(14, params) - cap.capacity(3, params)
        )
        assert mid < linear

    def test_effective_capacity_monotone_in_fraction(self, params):
        previous = 0.0
        for i in range(11):
            value = cap.effective_capacity(2, 10, i / 10, params)
            assert value >= previous
            previous = value
        previous = math.inf
        for i in range(11):
            value = cap.effective_capacity(10, 2, i / 10, params)
            assert value <= previous
            previous = value

    def test_effective_capacity_formula_example(self, params):
        # Scale-out 2 -> 4 at f = 0.5: each sender has 1/2 - 0.5*(1/2-1/4)
        # = 3/8 of the data -> effective machines = 8/3.
        value = cap.effective_capacity(2, 4, 0.5, params)
        assert value == pytest.approx(params.q * 8 / 3)

    def test_rejects_bad_fraction(self, params):
        with pytest.raises(ConfigurationError):
            cap.effective_capacity(2, 4, -0.1, params)
        with pytest.raises(ConfigurationError):
            cap.effective_capacity(2, 4, 1.5, params)


class TestForecastWindow:
    def test_minimum_window_is_2d_over_p(self, params):
        expected = 2 * params.d_seconds / params.partitions_per_node
        assert cap.minimum_forecast_window_seconds(params) == pytest.approx(expected)
