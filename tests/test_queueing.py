"""Tests for the fluid-queue latency model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.queueing import (
    LatencyComponents,
    PartitionQueue,
    fluid_queue_step,
    latency_components,
    mixture_mean,
    mixture_quantiles,
)
from repro.errors import ConfigurationError


class TestFluidQueue:
    def test_underload_serves_everything(self):
        backlog = np.array([0.0])
        new_backlog, served = fluid_queue_step(
            backlog, np.array([50.0]), np.array([100.0]), dt=1.0
        )
        assert served[0] == pytest.approx(50.0)
        assert new_backlog[0] == pytest.approx(0.0)

    def test_overload_accumulates(self):
        backlog = np.array([0.0])
        new_backlog, served = fluid_queue_step(
            backlog, np.array([150.0]), np.array([100.0]), dt=1.0
        )
        assert served[0] == pytest.approx(100.0)
        assert new_backlog[0] == pytest.approx(50.0)

    def test_backlog_drains(self):
        backlog = np.array([30.0])
        new_backlog, served = fluid_queue_step(
            backlog, np.array([50.0]), np.array([100.0]), dt=1.0
        )
        assert served[0] == pytest.approx(80.0)
        assert new_backlog[0] == pytest.approx(0.0)

    @given(
        st.floats(0, 1000), st.floats(0, 500), st.floats(1, 500),
        st.floats(0.1, 10),
    )
    @settings(max_examples=100, deadline=None)
    def test_work_conservation(self, backlog, offered, mu, dt):
        new_backlog, served = fluid_queue_step(
            np.array([backlog]), np.array([offered]), np.array([mu]), dt
        )
        # Work in == work out + work queued.
        assert backlog + offered * dt == pytest.approx(served[0] + new_backlog[0])
        assert new_backlog[0] >= -1e-9
        assert served[0] <= mu * dt + 1e-9


class TestLatencyComponents:
    def test_m_m_1_quantiles(self):
        # Single partition, no backlog: latency = base + Exp(mu - lambda).
        components = latency_components(
            np.array([0.0]), np.array([50.0]), np.array([100.0]),
            base_service_s=0.01,
        )
        p50, p99 = mixture_quantiles(components, (0.5, 0.99))
        assert p50 == pytest.approx(0.01 + np.log(2) / 50.0, rel=1e-6)
        assert p99 == pytest.approx(0.01 + np.log(100) / 50.0, rel=1e-6)

    def test_backlog_adds_deterministic_delay(self):
        no_queue = latency_components(
            np.array([0.0]), np.array([50.0]), np.array([100.0]), base_service_s=0.0
        )
        queued = latency_components(
            np.array([200.0]), np.array([50.0]), np.array([100.0]), base_service_s=0.0
        )
        p50_a = mixture_quantiles(no_queue, (0.5,))[0]
        p50_b = mixture_quantiles(queued, (0.5,))[0]
        assert p50_b == pytest.approx(p50_a + 2.0, rel=1e-6)

    def test_latency_monotone_in_load(self):
        previous = 0.0
        for offered in (10.0, 50.0, 80.0, 95.0):
            components = latency_components(
                np.array([0.0]), np.array([offered]), np.array([100.0]),
                base_service_s=0.0,
            )
            p99 = mixture_quantiles(components, (0.99,))[0]
            assert p99 > previous
            previous = p99

    def test_block_widens_tail(self):
        base = latency_components(
            np.array([0.0]), np.array([50.0]), np.array([100.0]),
            base_service_s=0.0,
        )
        blocked = latency_components(
            np.array([0.0]), np.array([50.0]), np.array([100.0]),
            base_service_s=0.0,
            block_seconds=np.array([0.4]),
            block_weight=np.array([0.4]),
        )
        p99_base = mixture_quantiles(base, (0.99,))[0]
        p99_blocked = mixture_quantiles(blocked, (0.99,))[0]
        assert p99_blocked > p99_base + 0.3  # reflects the 0.4 s pause

    def test_block_requires_weight(self):
        with pytest.raises(ConfigurationError):
            latency_components(
                np.array([0.0]), np.array([1.0]), np.array([10.0]),
                base_service_s=0.0, block_seconds=np.array([0.1]),
            )

    def test_weights_normalized(self):
        components = latency_components(
            np.zeros(4), np.array([10.0, 20.0, 30.0, 40.0]), np.full(4, 100.0),
            base_service_s=0.0,
        )
        assert components.weights.sum() == pytest.approx(1.0)

    def test_no_arrivals_degenerates(self):
        components = latency_components(
            np.zeros(2), np.zeros(2), np.full(2, 100.0), base_service_s=0.005
        )
        p50 = mixture_quantiles(components, (0.5,))[0]
        assert p50 >= 0.005


class TestMixtureQuantiles:
    def test_against_monte_carlo(self, rng):
        weights = np.array([0.6, 0.4])
        delays = np.array([0.05, 0.30])
        rates = np.array([40.0, 5.0])
        components = LatencyComponents(weights, delays, rates)
        analytic = mixture_quantiles(components, (0.5, 0.95, 0.99))
        choices = rng.choice(2, size=400_000, p=weights)
        samples = delays[choices] + rng.exponential(1.0 / rates[choices])
        empirical = np.percentile(samples, [50, 95, 99])
        assert np.allclose(analytic, empirical, rtol=0.02)

    def test_mixture_mean(self):
        components = LatencyComponents(
            np.array([0.5, 0.5]), np.array([0.1, 0.2]), np.array([10.0, 20.0])
        )
        expected = 0.5 * (0.1 + 0.1) + 0.5 * (0.2 + 0.05)
        assert mixture_mean(components) == pytest.approx(expected)

    def test_rejects_bad_quantile(self):
        components = LatencyComponents(
            np.array([1.0]), np.array([0.0]), np.array([1.0])
        )
        with pytest.raises(ConfigurationError):
            mixture_quantiles(components, (1.5,))

    def test_quantiles_monotone(self):
        components = LatencyComponents(
            np.array([0.3, 0.7]), np.array([0.0, 0.5]), np.array([3.0, 30.0])
        )
        q = mixture_quantiles(components, (0.1, 0.5, 0.9, 0.99))
        assert list(q) == sorted(q)


class TestPartitionQueue:
    def test_steady_state(self):
        queue = PartitionQueue(service_rate=100.0, base_service_s=0.01)
        for _ in range(10):
            served, percentiles = queue.step(offered=50.0)
        assert served == pytest.approx(50.0)
        assert queue.backlog == pytest.approx(0.0)
        assert percentiles[2] > percentiles[0] > 0.01

    def test_overload_latency_grows(self):
        queue = PartitionQueue(service_rate=100.0)
        previous = 0.0
        for _ in range(5):
            _, percentiles = queue.step(offered=150.0)
            assert percentiles[0] >= previous
            previous = percentiles[0]
        assert queue.backlog > 0

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            PartitionQueue(service_rate=0.0)
