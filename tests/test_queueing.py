"""Tests for the fluid-queue latency model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.queueing import (
    _SCALAR_BISECTION_THRESHOLD,
    LatencyComponents,
    PartitionQueue,
    _bisect_many,
    _scalar_bisect,
    _upper_bracket,
    fluid_queue_batch,
    fluid_queue_step,
    latency_components,
    latency_components_steps,
    merge_components,
    mixture_mean,
    mixture_quantiles,
    mixture_quantiles_steps,
)
from repro.errors import ConfigurationError


class TestFluidQueue:
    def test_underload_serves_everything(self):
        backlog = np.array([0.0])
        new_backlog, served = fluid_queue_step(
            backlog, np.array([50.0]), np.array([100.0]), dt=1.0
        )
        assert served[0] == pytest.approx(50.0)
        assert new_backlog[0] == pytest.approx(0.0)

    def test_overload_accumulates(self):
        backlog = np.array([0.0])
        new_backlog, served = fluid_queue_step(
            backlog, np.array([150.0]), np.array([100.0]), dt=1.0
        )
        assert served[0] == pytest.approx(100.0)
        assert new_backlog[0] == pytest.approx(50.0)

    def test_backlog_drains(self):
        backlog = np.array([30.0])
        new_backlog, served = fluid_queue_step(
            backlog, np.array([50.0]), np.array([100.0]), dt=1.0
        )
        assert served[0] == pytest.approx(80.0)
        assert new_backlog[0] == pytest.approx(0.0)

    @given(
        st.floats(0, 1000), st.floats(0, 500), st.floats(1, 500),
        st.floats(0.1, 10),
    )
    @settings(max_examples=100, deadline=None)
    def test_work_conservation(self, backlog, offered, mu, dt):
        new_backlog, served = fluid_queue_step(
            np.array([backlog]), np.array([offered]), np.array([mu]), dt
        )
        # Work in == work out + work queued.
        assert backlog + offered * dt == pytest.approx(served[0] + new_backlog[0])
        assert new_backlog[0] >= -1e-9
        assert served[0] <= mu * dt + 1e-9


class TestLatencyComponents:
    def test_m_m_1_quantiles(self):
        # Single partition, no backlog: latency = base + Exp(mu - lambda).
        components = latency_components(
            np.array([0.0]), np.array([50.0]), np.array([100.0]),
            base_service_s=0.01,
        )
        p50, p99 = mixture_quantiles(components, (0.5, 0.99))
        assert p50 == pytest.approx(0.01 + np.log(2) / 50.0, rel=1e-6)
        assert p99 == pytest.approx(0.01 + np.log(100) / 50.0, rel=1e-6)

    def test_backlog_adds_deterministic_delay(self):
        no_queue = latency_components(
            np.array([0.0]), np.array([50.0]), np.array([100.0]), base_service_s=0.0
        )
        queued = latency_components(
            np.array([200.0]), np.array([50.0]), np.array([100.0]), base_service_s=0.0
        )
        p50_a = mixture_quantiles(no_queue, (0.5,))[0]
        p50_b = mixture_quantiles(queued, (0.5,))[0]
        assert p50_b == pytest.approx(p50_a + 2.0, rel=1e-6)

    def test_latency_monotone_in_load(self):
        previous = 0.0
        for offered in (10.0, 50.0, 80.0, 95.0):
            components = latency_components(
                np.array([0.0]), np.array([offered]), np.array([100.0]),
                base_service_s=0.0,
            )
            p99 = mixture_quantiles(components, (0.99,))[0]
            assert p99 > previous
            previous = p99

    def test_block_widens_tail(self):
        base = latency_components(
            np.array([0.0]), np.array([50.0]), np.array([100.0]),
            base_service_s=0.0,
        )
        blocked = latency_components(
            np.array([0.0]), np.array([50.0]), np.array([100.0]),
            base_service_s=0.0,
            block_seconds=np.array([0.4]),
            block_weight=np.array([0.4]),
        )
        p99_base = mixture_quantiles(base, (0.99,))[0]
        p99_blocked = mixture_quantiles(blocked, (0.99,))[0]
        assert p99_blocked > p99_base + 0.3  # reflects the 0.4 s pause

    def test_block_requires_weight(self):
        with pytest.raises(ConfigurationError):
            latency_components(
                np.array([0.0]), np.array([1.0]), np.array([10.0]),
                base_service_s=0.0, block_seconds=np.array([0.1]),
            )

    def test_weights_normalized(self):
        components = latency_components(
            np.zeros(4), np.array([10.0, 20.0, 30.0, 40.0]), np.full(4, 100.0),
            base_service_s=0.0,
        )
        assert components.weights.sum() == pytest.approx(1.0)

    def test_no_arrivals_degenerates(self):
        components = latency_components(
            np.zeros(2), np.zeros(2), np.full(2, 100.0), base_service_s=0.005
        )
        p50 = mixture_quantiles(components, (0.5,))[0]
        assert p50 >= 0.005


class TestMixtureQuantiles:
    def test_against_monte_carlo(self, rng):
        weights = np.array([0.6, 0.4])
        delays = np.array([0.05, 0.30])
        rates = np.array([40.0, 5.0])
        components = LatencyComponents(weights, delays, rates)
        analytic = mixture_quantiles(components, (0.5, 0.95, 0.99))
        choices = rng.choice(2, size=400_000, p=weights)
        samples = delays[choices] + rng.exponential(1.0 / rates[choices])
        empirical = np.percentile(samples, [50, 95, 99])
        assert np.allclose(analytic, empirical, rtol=0.02)

    def test_mixture_mean(self):
        components = LatencyComponents(
            np.array([0.5, 0.5]), np.array([0.1, 0.2]), np.array([10.0, 20.0])
        )
        expected = 0.5 * (0.1 + 0.1) + 0.5 * (0.2 + 0.05)
        assert mixture_mean(components) == pytest.approx(expected)

    def test_rejects_bad_quantile(self):
        components = LatencyComponents(
            np.array([1.0]), np.array([0.0]), np.array([1.0])
        )
        with pytest.raises(ConfigurationError):
            mixture_quantiles(components, (1.5,))

    def test_quantiles_monotone(self):
        components = LatencyComponents(
            np.array([0.3, 0.7]), np.array([0.0, 0.5]), np.array([3.0, 30.0])
        )
        q = mixture_quantiles(components, (0.1, 0.5, 0.9, 0.99))
        assert list(q) == sorted(q)


class TestPartitionQueue:
    def test_steady_state(self):
        queue = PartitionQueue(service_rate=100.0, base_service_s=0.01)
        for _ in range(10):
            served, percentiles = queue.step(offered=50.0)
        assert served == pytest.approx(50.0)
        assert queue.backlog == pytest.approx(0.0)
        assert percentiles[2] > percentiles[0] > 0.01

    def test_overload_latency_grows(self):
        queue = PartitionQueue(service_rate=100.0)
        previous = 0.0
        for _ in range(5):
            _, percentiles = queue.step(offered=150.0)
            assert percentiles[0] >= previous
            previous = percentiles[0]
        assert queue.backlog > 0

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            PartitionQueue(service_rate=0.0)


class TestBisectionCrossover:
    """The quantile solver picks plain-Python bisection for tiny merged
    mixtures and the vectorized kernel above ``_SCALAR_BISECTION_THRESHOLD``
    units of work.  The two branches evaluate ``exp`` differently
    (``math.exp`` vs ``np.exp``), so they are not bit-equal — but both
    bracket the same root of the same CDF to bisection tolerance, and
    mixtures straddling the crossover must not jump."""

    @staticmethod
    def _random_mixture(rng, n):
        w = rng.dirichlet(np.ones(n))
        d = rng.uniform(0.0, 2.0, n)
        r = rng.uniform(0.05, 50.0, n)
        return w, d, r

    @given(
        n=st.integers(min_value=1, max_value=24),
        n_q=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_scalar_and_vectorized_branches_agree(self, n, n_q, seed):
        rng = np.random.default_rng(seed)
        w, d, r = self._random_mixture(rng, n)
        qs = np.sort(rng.uniform(0.05, 0.995, n_q))
        hi = _upper_bracket(d, r, float(qs.max()))
        scalar = _scalar_bisect(w.tolist(), d.tolist(), r.tolist(), qs, hi)
        vector = _bisect_many(
            w[None, :], d[None, :], r[None, :], qs, np.full(1, hi)
        )[0]
        # After 40 halvings of the same bracket both land within ~hi/2^39
        # of the true quantile; 1e-9 relative to the bracket is generous.
        np.testing.assert_allclose(scalar, vector, rtol=0.0, atol=1e-9 * max(hi, 1.0))

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_no_jump_across_crossover(self, seed):
        """Growing a mixture by one component across the work threshold
        must move the quantiles continuously (the branch switch is an
        implementation detail, not a model change)."""
        rng = np.random.default_rng(seed)
        quantiles = (0.50, 0.95, 0.99)
        # len(w) * len(quantiles) crosses the threshold at n = 11 for 3
        # quantiles; sweep a window around it with distinct (d, r) pairs
        # so merging never collapses components.
        lo_n = _SCALAR_BISECTION_THRESHOLD // len(quantiles) - 2
        results = []
        for n in range(lo_n, lo_n + 5):
            w = np.full(n, 1.0 / n)
            d = np.linspace(0.01, 0.5, n)
            r = np.linspace(5.0, 40.0, n) + rng.uniform(0, 0.1)
            comps = LatencyComponents(w, d, r)
            results.append(mixture_quantiles(comps, quantiles))
        results = np.array(results)
        # Adjacent mixtures differ by one light component; quantiles
        # drift smoothly, never by orders of magnitude.
        steps = np.abs(np.diff(results, axis=0))
        assert float(steps.max()) < 0.5

    @given(
        n=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_mixture_quantiles_matches_cdf(self, n, seed):
        """Whichever branch runs, the returned quantile inverts the
        mixture CDF: F(x_q) ~= q."""
        rng = np.random.default_rng(seed)
        w, d, r = self._random_mixture(rng, n)
        comps = LatencyComponents(w, d, r)
        mw, md, mr = merge_components(w, d, r)
        for q, x in zip((0.5, 0.95, 0.99), mixture_quantiles(comps, (0.5, 0.95, 0.99))):
            gap = x - md
            cdf = float(
                np.sum(mw * np.where(gap > 0, 1.0 - np.exp(-mr * np.maximum(gap, 0.0)), 0.0))
            )
            assert abs(cdf - q) < 1e-6


class TestBatchedKernels:
    """The (S x P) batched slot kernel must equal step-by-step evaluation
    bit for bit (the engine's exact-stepping contract)."""

    @given(
        steps=st.integers(min_value=1, max_value=20),
        parts=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        clamp=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_fluid_queue_batch_matches_sequential(self, steps, parts, seed, clamp):
        rng = np.random.default_rng(seed)
        backlog0 = rng.uniform(0.0, 50.0, parts)
        offered = rng.uniform(0.0, 120.0, parts)
        mu = rng.uniform(1.0, 100.0, parts)
        dt = 1.0
        max_backlog = mu * rng.uniform(0.5, 3.0) if clamp else None

        pre, served, final = fluid_queue_batch(
            backlog0, offered, mu, dt, steps, max_backlog=max_backlog
        )

        b = backlog0.copy()
        for s in range(steps):
            np.testing.assert_array_equal(pre[s], b, err_msg=f"pre row {s}")
            b, served_s = fluid_queue_step(b, offered, mu, dt)
            if max_backlog is not None:
                np.minimum(b, max_backlog, out=b)
            np.testing.assert_array_equal(served[s], served_s, err_msg=f"served row {s}")
        np.testing.assert_array_equal(final, b)
        # The input backlog must not have been mutated.
        np.testing.assert_array_equal(backlog0, pre[0])

    @given(
        steps=st.integers(min_value=1, max_value=12),
        parts=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_latency_and_quantile_steps_match_per_step(self, steps, parts, seed):
        rng = np.random.default_rng(seed)
        backlogs = rng.uniform(0.0, 30.0, (steps, parts))
        offered = rng.uniform(0.0, 80.0, parts)
        mu = rng.uniform(1.0, 90.0, parts)
        base = 0.025
        quantiles = (0.50, 0.95, 0.99)

        w, delays, tails = latency_components_steps(
            backlogs, offered, mu, base_service_s=base
        )
        batched = mixture_quantiles_steps(w, delays, tails, quantiles)

        for s in range(steps):
            comps = latency_components(
                backlogs[s], offered, mu, base_service_s=base
            )
            np.testing.assert_array_equal(w, comps.weights)
            np.testing.assert_array_equal(delays[s], comps.delays)
            np.testing.assert_array_equal(tails, comps.tail_rates)
            np.testing.assert_array_equal(
                batched[s],
                mixture_quantiles(comps, quantiles),
                err_msg=f"quantiles row {s} not bit-identical",
            )
