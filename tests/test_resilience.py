"""Serving-path fault tolerance: breakers, brownout, retries, chaos e2e.

The end-to-end tests run a live chaos scenario on the virtual clock: a
node crashes mid-serve, the stale router keeps feeding it (errors), the
consecutive-miss detector opens its breaker (traffic reroutes), the node
recovers, the breaker half-opens and closes — and request conservation
(offered = served + shed + errored + in-flight) holds exactly.
"""

import pytest

from repro.engine.simulator import EngineConfig
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, NodeCrash
from repro.serve import (
    AdmissionConfig,
    BreakerConfig,
    BrownoutConfig,
    ResilienceConfig,
    RetryConfig,
    ServeSession,
    ServerEngine,
    poisson_arrivals,
)
from repro.serve.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.telemetry import Telemetry

SAT = 12.0


def small_config(**kwargs):
    defaults = dict(max_nodes=4, saturation_rate_per_node=SAT, db_size_kb=5 * 1024)
    defaults.update(kwargs)
    return EngineConfig(**defaults)


def chaos_engine(plan=None, *, resilience=None, telemetry=None, **kwargs):
    defaults = dict(
        engine_config=small_config(),
        initial_nodes=3,
        admission=AdmissionConfig(queue_limit_seconds=8.0),
        resilience=resilience,
        telemetry=telemetry,
    )
    if plan is not None:
        defaults["fault_injector"] = FaultInjector(plan)
    defaults.update(kwargs)
    return ServerEngine(**defaults)


def fast_breakers(**kwargs):
    defaults = dict(miss_threshold=3, open_seconds=20.0, half_open_successes=2)
    defaults.update(kwargs)
    return ResilienceConfig(breaker=BreakerConfig(**defaults))


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_consecutive_misses(self):
        breaker = CircuitBreaker(0, BreakerConfig(miss_threshold=3))
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == CLOSED
        breaker.record_failure(3.0)
        assert breaker.state == OPEN
        assert not breaker.allows_traffic

    def test_success_resets_miss_streak(self):
        breaker = CircuitBreaker(0, BreakerConfig(miss_threshold=2))
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        assert breaker.state == CLOSED

    def test_half_open_after_dwell_then_closes(self):
        config = BreakerConfig(miss_threshold=1, open_seconds=10.0, half_open_successes=2)
        breaker = CircuitBreaker(0, config)
        breaker.record_failure(5.0)
        assert breaker.state == OPEN
        breaker.poll(14.0)
        assert breaker.state == OPEN
        breaker.poll(15.0)
        assert breaker.state == HALF_OPEN
        breaker.record_success(16.0)
        assert breaker.state == HALF_OPEN
        breaker.record_success(17.0)
        assert breaker.state == CLOSED
        assert [t[1:] for t in breaker.transitions] == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_half_open_failure_reopens_with_fresh_dwell(self):
        config = BreakerConfig(miss_threshold=1, open_seconds=10.0)
        breaker = CircuitBreaker(0, config)
        breaker.record_failure(0.0)
        breaker.poll(10.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure(11.0)
        assert breaker.state == OPEN
        assert breaker.opened_at == 11.0
        breaker.poll(20.0)
        assert breaker.state == OPEN  # the dwell restarted at 11

    def test_state_dict_roundtrip(self):
        breaker = CircuitBreaker(3, BreakerConfig(miss_threshold=1))
        breaker.record_failure(2.0)
        clone = CircuitBreaker(3, BreakerConfig(miss_threshold=1))
        clone.load_state_dict(breaker.state_dict())
        assert clone.state == OPEN
        assert clone.opened_at == 2.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(miss_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(open_seconds=0)
        with pytest.raises(ConfigurationError):
            BrownoutConfig(queue_factor=0.0)
        with pytest.raises(ConfigurationError):
            RetryConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryConfig(backoff_base_s=5.0, backoff_cap_s=1.0)
        with pytest.raises(ConfigurationError):
            RetryConfig(low_priority_fraction=1.5)


# ----------------------------------------------------------------------
# End-to-end chaos on the virtual clock
# ----------------------------------------------------------------------
class TestChaosServing:
    PLAN = FaultPlan([NodeCrash(at_seconds=30.0, node_id=1, recover_after_seconds=60.0)])

    def run_chaos(self, *, retry=None, telemetry=None, seed=0):
        engine = chaos_engine(
            self.PLAN, resilience=fast_breakers(), telemetry=telemetry
        )
        arrivals = poisson_arrivals(10.0, 150.0, seed=seed)
        session = ServeSession(engine, arrivals, retry=retry, retry_seed=seed)
        report = session.run(160.0)
        return engine, session, report

    def test_crash_detect_reroute_recover_close_arc(self):
        engine, _, report = self.run_chaos()

        # The stale router fed the corpse until the breaker opened.
        assert engine.errors > 0
        assert report.errored > 0

        breaker = engine.health.breakers[1]
        arcs = [t[1:] for t in breaker.transitions]
        assert (CLOSED, OPEN) in arcs  # detected
        assert (OPEN, HALF_OPEN) in arcs  # dwell expired, probing resumed
        assert arcs[-1] == (HALF_OPEN, CLOSED)  # recovered and confirmed
        assert breaker.state == CLOSED

        # Detection happened within miss_threshold ticks of the crash
        # (request failures can trip the detector even sooner).
        opened_at = next(t[0] for t in breaker.transitions if t[2] == OPEN)
        assert 30.0 <= opened_at <= 34.0

        # While the breaker was open no further errors accrued: every
        # error has a submission time inside the undetected window.
        assert engine.brownout_sheds == 0  # no low-priority traffic here

    def test_request_conservation_exact(self):
        _, _, report = self.run_chaos()
        assert report.offered > 0
        assert report.in_flight == 0
        assert report.conserved
        assert (
            report.offered
            == report.accepted + report.rejected + report.errored
        )
        assert "(exact)" in report.conservation_line()

    def test_retries_recover_errored_requests(self):
        _, _, bare = self.run_chaos()
        _, _, retried = self.run_chaos(
            retry=RetryConfig(max_retries=3, backoff_base_s=1.0, budget_floor=100)
        )
        # Retries convert most stale-window errors into successes.
        assert retried.retries > 0
        assert retried.retry_successes > 0
        assert retried.errored < bare.errored
        assert retried.conserved

    def test_chaos_run_is_deterministic(self):
        _, _, a = self.run_chaos(retry=RetryConfig())
        _, _, b = self.run_chaos(retry=RetryConfig())
        assert a.summary() == b.summary()
        assert a.latencies_ms == b.latencies_ms

    def test_breaker_telemetry_and_events(self):
        telemetry = Telemetry()
        engine, _, _ = self.run_chaos(telemetry=telemetry)
        assert telemetry.counter("serve.breaker.transitions").value >= 3
        assert telemetry.counter("serve.errors").value == engine.errors
        assert telemetry.timeline.events_of("breaker")
        assert telemetry.timeline.events_of("brownout")
        assert telemetry.counter("serve.brownout.engaged").value >= 1
        assert telemetry.counter("serve.brownout.released").value >= 1

    def test_healthz_exposes_resilience_state(self):
        engine, _, _ = self.run_chaos()
        health = engine.healthz()
        assert health["errors"] == engine.errors
        assert health["brownout"] is False
        assert health["breakers"]["1"] == CLOSED


class TestBrownout:
    def test_low_priority_shed_while_breaker_open(self):
        plan = FaultPlan([NodeCrash(at_seconds=20.0, node_id=1)])  # never recovers
        resilience = ResilienceConfig(
            breaker=BreakerConfig(miss_threshold=2, open_seconds=1000.0),
            brownout=BrownoutConfig(queue_factor=0.5, shed_low_priority=True),
        )
        engine = chaos_engine(plan, resilience=resilience)
        arrivals = poisson_arrivals(6.0, 80.0, seed=1)
        session = ServeSession(
            engine,
            arrivals,
            retry=RetryConfig(max_retries=0, low_priority_fraction=0.5),
            retry_seed=1,
        )
        report = session.run(90.0)
        assert engine.brownout_active
        assert engine.brownout_sheds > 0
        assert report.brownout_shed > 0
        assert report.conserved
        assert engine.healthz()["status"] == "brownout"

    def test_no_brownout_when_disabled(self):
        plan = FaultPlan([NodeCrash(at_seconds=20.0, node_id=1)])
        resilience = ResilienceConfig(
            breaker=BreakerConfig(miss_threshold=2, open_seconds=1000.0),
            brownout=None,
        )
        engine = chaos_engine(plan, resilience=resilience)
        session = ServeSession(engine, poisson_arrivals(6.0, 80.0, seed=1))
        session.run(90.0)
        assert engine.health.breakers[1].state == OPEN
        assert not engine.brownout_active


class TestRetriesAndHedging:
    def test_shed_requests_retry_after_backoff(self):
        # A tiny queue limit sheds aggressively during a 30s burst;
        # retries back off past the burst's end and then succeed.
        engine = chaos_engine(
            admission=AdmissionConfig(queue_limit_seconds=0.3),
            resilience=fast_breakers(),
        )
        arrivals = poisson_arrivals(20.0, 30.0, seed=3)
        session = ServeSession(
            engine,
            arrivals,
            retry=RetryConfig(max_retries=2, backoff_base_s=2.0, budget_floor=1000),
            retry_seed=3,
        )
        report = session.run(80.0)
        assert report.retries > 0
        assert report.retry_successes > 0
        assert report.conserved

    def test_retry_budget_bounds_amplification(self):
        engine = chaos_engine(
            admission=AdmissionConfig(queue_limit_seconds=0.1),
            resilience=fast_breakers(),
        )
        arrivals = poisson_arrivals(20.0, 30.0, seed=4)
        budget_floor = 5
        session = ServeSession(
            engine,
            arrivals,
            retry=RetryConfig(
                max_retries=3, budget_fraction=0.0, budget_floor=budget_floor
            ),
            retry_seed=4,
        )
        report = session.run(40.0)
        assert report.retries <= budget_floor
        assert report.conserved

    def test_hedging_fires_on_long_queue_estimates(self):
        engine = chaos_engine(
            admission=AdmissionConfig(queue_limit_seconds=30.0),
            resilience=fast_breakers(),
        )
        arrivals = poisson_arrivals(30.0, 40.0, seed=5)  # way past saturation
        session = ServeSession(
            engine,
            arrivals,
            retry=RetryConfig(max_retries=0, hedge_queue_seconds=1.0),
            retry_seed=5,
        )
        report = session.run(50.0)
        assert report.hedges > 0
        assert report.hedge_wins >= 0
        assert report.conserved

    def test_resilience_without_faults_is_bit_identical(self):
        # With no faults, enabling detection must not perturb serving:
        # probes consume no RNG and the router view matches the cluster,
        # so results are bit-identical to the resilience-off path.
        def run(**kwargs):
            engine = chaos_engine(**kwargs)
            session = ServeSession(engine, poisson_arrivals(6.0, 60.0, seed=6))
            return session.run(70.0)

        a = run(resilience=None)
        b = run(resilience=fast_breakers())
        assert a.summary() == b.summary()
        assert a.latencies_ms == b.latencies_ms


# ----------------------------------------------------------------------
# Distributed chaos: worker crash → breaker opens → edge reroutes
# ----------------------------------------------------------------------
class TestDistributedWorkerCrash:
    """The crash arc across the process boundary (inproc transport:
    identical protocol, deterministic scheduling)."""

    def make_session(self, *, brownout=None, low_priority_fraction=0.0):
        from repro.serve import DistributedServeSession, WorkerSpec

        workers = [
            WorkerSpec(
                worker_id=i,
                initial_nodes=1,
                max_nodes=2,
                saturation_rate_per_node=120.0,
                queue_limit_seconds=8.0,
                seed=i,
            )
            for i in range(2)
        ]
        arrivals = poisson_arrivals(120.0, 60.0, seed=8)
        return DistributedServeSession(
            workers,
            arrivals,
            mode="inproc",
            breaker=BreakerConfig(miss_threshold=3, open_seconds=20.0),
            brownout=brownout,
            low_priority_fraction=low_priority_fraction,
            seed=8,
        )

    def test_crash_opens_breaker_and_reroutes(self):
        with self.make_session() as session:
            session.run(10.0)
            victim = session.workers[1]
            victim.kill()
            report = session.run(30.0)

        assert session.breakers[1].state == OPEN
        assert session.breakers[0].state == CLOSED
        # Post-crash traffic all lands on the survivor; the fleet keeps
        # serving and every request still gets a terminal answer.
        assert report.accepted > 0
        assert report.conserved
        health = session.healthz()
        assert health["status"] == "degraded"
        assert health["workers"]["1"]["status"] == "dead"

    def test_crash_mid_batch_fails_closed_not_lost(self):
        # Kill between ticks but after routing state is warm: the batch
        # already routed to the dead worker terminates as 500s with
        # reason "connection" — errored, not vanished.
        with self.make_session() as session:
            session.run(5.0)
            session.workers[0].kill()
            session.workers[1].kill()
            report = session.run(10.0)
        assert report.errored > 0
        assert report.accepted + report.rejected + report.errored == (
            report.offered
        )
        assert report.conserved
        assert session.healthz()["status"] == "degraded"

    def test_open_breaker_triggers_edge_brownout(self):
        with self.make_session(
            brownout=BrownoutConfig(), low_priority_fraction=0.5
        ) as session:
            session.run(10.0)
            assert not session.brownout_active
            session.workers[1].kill()
            report = session.run(30.0)
            assert session.brownout_active
        assert report.rejected > 0, "low-priority work sheds under brownout"
        assert report.conserved
