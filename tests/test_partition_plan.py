"""Tests for bucket-level partition plans."""

import pytest

from repro.core.partition_plan import (
    PartitionPlan,
    plan_move,
)
from repro.errors import ConfigurationError


class TestPartitionPlan:
    def test_balanced_assignment(self):
        plan = PartitionPlan.balanced(4, num_buckets=64)
        counts = plan.bucket_counts()
        assert counts == {0: 16, 1: 16, 2: 16, 3: 16}
        assert plan.imbalance() == 0.0

    def test_balanced_uneven_buckets(self):
        plan = PartitionPlan.balanced(3, num_buckets=64)
        counts = plan.bucket_counts()
        assert sum(counts.values()) == 64
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_data_fractions_sum_to_one(self):
        plan = PartitionPlan.balanced(5, num_buckets=100)
        assert sum(plan.data_fractions().values()) == pytest.approx(1.0)

    def test_node_of_and_buckets_of(self):
        plan = PartitionPlan.balanced(2, num_buckets=10)
        for bucket in plan.buckets_of(0):
            assert plan.node_of(bucket) == 0

    def test_rejects_invalid_assignment(self):
        with pytest.raises(ConfigurationError):
            PartitionPlan([0, 1, 5], num_nodes=2)
        with pytest.raises(ConfigurationError):
            PartitionPlan([], num_nodes=1)
        with pytest.raises(ConfigurationError):
            PartitionPlan.balanced(0)

    def test_rejects_fewer_buckets_than_nodes(self):
        with pytest.raises(ConfigurationError):
            PartitionPlan.balanced(10, num_buckets=5)


class TestPlanMove:
    def test_noop(self):
        plan = PartitionPlan.balanced(3, num_buckets=60)
        new_plan, transfers = plan_move(plan, 3)
        assert new_plan is plan
        assert transfers == []

    def test_scale_out_balances(self):
        plan = PartitionPlan.balanced(2, num_buckets=128)
        new_plan, transfers = plan_move(plan, 4)
        counts = new_plan.bucket_counts()
        assert len(counts) == 4
        assert max(counts.values()) - min(counts.values()) <= 2
        # Only new nodes receive.
        for transfer in transfers:
            assert transfer.sender in (0, 1)
            assert transfer.receiver in (2, 3)

    def test_scale_out_equal_pair_shares(self):
        plan = PartitionPlan.balanced(3, num_buckets=1024)
        _, transfers = plan_move(plan, 14)
        sizes = [len(t.buckets) for t in transfers]
        assert len(transfers) == 3 * 11
        assert max(sizes) - min(sizes) <= 1

    def test_scale_in_empties_departing(self):
        plan = PartitionPlan.balanced(5, num_buckets=100)
        new_plan, transfers = plan_move(plan, 2)
        counts = new_plan.bucket_counts()
        assert counts.get(2, 0) == 0 or 2 not in counts
        assert counts[0] + counts[1] == 100
        for transfer in transfers:
            assert transfer.sender in (2, 3, 4)
            assert transfer.receiver in (0, 1)

    def test_moved_buckets_change_owner(self):
        plan = PartitionPlan.balanced(2, num_buckets=64)
        new_plan, transfers = plan_move(plan, 3)
        for transfer in transfers:
            for bucket in transfer.buckets:
                assert plan.node_of(bucket) == transfer.sender
                assert new_plan.node_of(bucket) == transfer.receiver

    def test_rejects_bad_target(self):
        plan = PartitionPlan.balanced(2, num_buckets=8)
        with pytest.raises(ConfigurationError):
            plan_move(plan, 0)
        with pytest.raises(ConfigurationError):
            plan_move(plan, 100)  # more nodes than buckets
