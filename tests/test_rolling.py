"""Tests for the walk-forward forecast evaluator."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.naive import SeasonalNaivePredictor
from repro.prediction.rolling import mre_by_horizon, rolling_forecast
from repro.prediction.spar import SPARPredictor


def periodic_series(period: int, days: int) -> np.ndarray:
    profile = 50.0 + 20.0 * np.cos(2 * np.pi * np.arange(period) / period)
    return np.tile(profile, days)


class TestRollingForecast:
    def test_alignment(self):
        period = 24
        series = periodic_series(period, 10)
        model = SeasonalNaivePredictor(period=period)
        result = rolling_forecast(model, series, tau=3, eval_start=5 * period)
        assert result.target_indices[0] == 5 * period
        assert result.target_indices[-1] == len(series) - 1
        assert np.allclose(result.actual, series[result.target_indices])

    def test_seasonal_naive_is_exact_on_periodic_data(self):
        period = 24
        series = periodic_series(period, 10)
        model = SeasonalNaivePredictor(period=period)
        result = rolling_forecast(model, series, tau=2, eval_start=3 * period)
        assert result.mre_pct == pytest.approx(0.0, abs=1e-9)

    def test_step_subsampling(self):
        period = 24
        series = periodic_series(period, 10)
        model = SeasonalNaivePredictor(period=period)
        full = rolling_forecast(model, series, tau=1, eval_start=5 * period)
        strided = rolling_forecast(model, series, tau=1, eval_start=5 * period, step=4)
        assert len(strided) == (len(full) + 3) // 4

    def test_spar_fast_path_matches_slow_path(self):
        period = 48
        series = periodic_series(period, 20)
        rng = np.random.default_rng(0)
        series = series * rng.uniform(0.95, 1.05, len(series))
        model = SPARPredictor(period=period, n_periods=3, n_recent=4, max_horizon=4)
        model.fit(series[: 15 * period])
        fast = rolling_forecast(model, series, tau=2, eval_start=16 * period)
        # Force the generic path by wrapping predict in a shim object.
        class Shim:
            min_history = model.min_history
            max_horizon = model.max_horizon

            def predict(self, history, horizon):
                return model.predict(history, horizon)

        slow = rolling_forecast(Shim(), series, tau=2, eval_start=16 * period)
        assert np.allclose(fast.predicted, slow.predicted, rtol=1e-9)
        assert np.array_equal(fast.target_indices, slow.target_indices)

    def test_rejects_bad_tau(self):
        with pytest.raises(PredictionError):
            rolling_forecast(SeasonalNaivePredictor(24), np.ones(100), tau=0)

    def test_no_evaluable_slots(self):
        model = SeasonalNaivePredictor(period=24)
        with pytest.raises(PredictionError):
            rolling_forecast(model, np.ones(100), tau=1, eval_start=200)


class TestMreByHorizon:
    def test_returns_all_horizons(self):
        period = 24
        series = periodic_series(period, 10)
        model = SeasonalNaivePredictor(period=period)
        result = mre_by_horizon(model, series, (1, 2, 3), eval_start=5 * period)
        assert set(result) == {1, 2, 3}
        assert all(v == pytest.approx(0.0, abs=1e-9) for v in result.values())
