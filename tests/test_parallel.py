"""Tests for repro.parallel: deterministic process-sharded grids."""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.errors import ParallelExecutionError
from repro.parallel import cpu_workers, parallel_map, shard_indices, spawn_seeds

# Worker functions must be module-level (picklable).


def _square(x: int) -> int:
    return x * x


def _die_in_worker(x: int) -> int:
    """Kill the interpreter when running in a pool worker; fine in the
    parent — simulates an environmental worker death (OOM kill)."""
    if x == 2 and multiprocessing.parent_process() is not None:
        os._exit(1)
    return x * x


def _die_in_worker_bad_cell(x: int) -> int:
    """Dies in the worker AND fails deterministically in the parent —
    the in-process retry must name this cell."""
    if x == 2:
        if multiprocessing.parent_process() is not None:
            os._exit(1)
        raise ValueError("cell is genuinely broken")
    return x * x


def _fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("boom at 3")
    return x


def _seeded_draw(seed: int) -> float:
    return float(np.random.default_rng(seed).uniform())


class TestParallelMap:
    def test_serial_matches_list_comprehension(self):
        items = list(range(10))
        assert parallel_map(_square, items) == [x * x for x in items]
        assert parallel_map(_square, items, max_workers=1) == [x * x for x in items]

    @pytest.mark.parametrize("workers", [2, 3, 8])
    def test_results_identical_across_worker_counts(self, workers):
        """The acceptance contract: same values, same order, for every
        worker count — including more workers than items."""
        items = list(range(7))
        expected = [x * x for x in items]
        assert parallel_map(_square, items, max_workers=workers) == expected

    def test_seeded_work_is_order_stable(self):
        seeds = spawn_seeds(1234, 6)
        serial = parallel_map(_seeded_draw, seeds, max_workers=1)
        sharded = parallel_map(_seeded_draw, seeds, max_workers=3)
        assert serial == sharded

    def test_empty_and_single_item(self):
        assert parallel_map(_square, [], max_workers=4) == []
        assert parallel_map(_square, [5], max_workers=4) == [25]

    def test_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom at 3"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], max_workers=1)

    def test_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="boom at 3"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], max_workers=2)

    def test_worker_death_recovers_in_process(self):
        # The pool dies mid-grid; the serial retry succeeds (the death
        # was environmental) and still returns the full ordered result.
        items = list(range(5))
        assert parallel_map(_die_in_worker, items, max_workers=2) == [
            x * x for x in items
        ]

    def test_worker_death_names_the_failing_cell(self):
        with pytest.raises(ParallelExecutionError) as excinfo:
            parallel_map(_die_in_worker_bad_cell, list(range(5)), max_workers=2)
        message = str(excinfo.value)
        assert "cell 2" in message and "(2)" in message
        assert "genuinely broken" in message
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_consumes_any_iterable(self):
        assert parallel_map(_square, (x for x in range(4)), max_workers=2) == [
            0,
            1,
            4,
            9,
        ]


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(99, 5) == spawn_seeds(99, 5)

    def test_distinct_within_and_across_parents(self):
        seeds = spawn_seeds(7, 8)
        assert len(set(seeds)) == 8
        assert set(seeds).isdisjoint(spawn_seeds(8, 8))

    def test_prefix_stable(self):
        """Growing a sweep keeps the existing cells' seeds unchanged."""
        assert spawn_seeds(42, 3) == spawn_seeds(42, 6)[:3]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)


class TestShardIndices:
    def test_partitions_exactly(self):
        for n_items in (0, 1, 7, 12):
            for n_shards in (1, 3, 5):
                shards = shard_indices(n_items, n_shards)
                flat = [i for shard in shards for i in shard]
                assert flat == list(range(n_items))
                sizes = [len(s) for s in shards]
                assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            shard_indices(4, 0)


def test_cpu_workers_bounds():
    assert cpu_workers() >= 1
    assert cpu_workers(cap=1) == 1


class TestExperimentSharding:
    """The ablation grids must be worker-count invariant end to end."""

    def test_horizon_ablation_parallel_identical(self):
        from repro.experiments.ablations import run_horizon_ablation

        serial = run_horizon_ablation(fast=True)
        sharded = run_horizon_ablation(fast=True, workers=2)
        assert serial == sharded
