"""Tests for the Squall-like chunked live migration."""

import pytest

from repro.b2w.schema import b2w_schema
from repro.core.schedule import build_move_schedule
from repro.engine.cluster import Cluster
from repro.engine.migration import Migration, MigrationConfig
from repro.engine.table import DatabaseSchema
from repro.errors import MigrationError

DB_KB = 1106.0 * 1024.0


def make_cluster(initial=2, partitions=6, max_nodes=14) -> Cluster:
    return Cluster(
        DatabaseSchema(), initial_nodes=initial, partitions_per_node=partitions,
        num_buckets=512, max_nodes=max_nodes,
    )


class TestMigrationConfig:
    def test_paper_defaults(self):
        config = MigrationConfig()
        assert config.chunk_kb == 1000.0
        assert config.rate_kbps == 244.0
        # ~4.1 s between chunks; ~40 ms pause per chunk.
        assert config.chunk_period_s == pytest.approx(1000 / 244)
        assert config.chunk_block_s == pytest.approx(0.04)
        assert config.blocked_fraction < 0.02

    def test_boost_multiplies_rate(self):
        config = MigrationConfig(boost=8.0)
        assert config.effective_rate_kbps == pytest.approx(244.0 * 8)
        assert config.blocked_fraction == pytest.approx(
            MigrationConfig().blocked_fraction * 8, rel=1e-9
        )

    def test_bigger_chunks_bigger_pauses(self):
        small = MigrationConfig(chunk_kb=1000.0)
        large = MigrationConfig(chunk_kb=8000.0)
        assert large.chunk_block_s == pytest.approx(8 * small.chunk_block_s)
        # Long-run overhead fraction is chunk-size independent.
        assert large.blocked_fraction == pytest.approx(small.blocked_fraction)

    def test_rejects_invalid(self):
        with pytest.raises(MigrationError):
            MigrationConfig(chunk_kb=0)
        with pytest.raises(MigrationError):
            MigrationConfig(boost=0.5)


class TestMigrationLifecycle:
    def test_rejects_noop_and_bad_targets(self):
        cluster = make_cluster(initial=2)
        with pytest.raises(MigrationError):
            Migration(cluster, 2, DB_KB)
        with pytest.raises(MigrationError):
            Migration(cluster, 0, DB_KB)
        with pytest.raises(MigrationError):
            Migration(cluster, 99, DB_KB)
        with pytest.raises(MigrationError):
            Migration(cluster, 3, 0.0)

    def test_duration_matches_schedule(self):
        cluster = make_cluster(initial=2)
        migration = Migration(cluster, 4, DB_KB)
        schedule = build_move_schedule(2, 4, 6)
        from repro.core.params import SystemParameters

        params = SystemParameters(partitions_per_node=6)
        # The migration paces off R = 244 kB/s while D = 4646 s includes
        # the paper's 10% buffer on 2 x 2112 s, so they differ by <0.5%.
        assert migration.total_seconds == pytest.approx(
            schedule.total_seconds(params), rel=5e-3
        )

    def test_boost_divides_duration(self):
        slow = Migration(make_cluster(initial=2), 4, DB_KB, MigrationConfig())
        fast = Migration(
            make_cluster(initial=2), 4, DB_KB, MigrationConfig(boost=8.0)
        )
        assert fast.total_seconds == pytest.approx(slow.total_seconds / 8.0)

    def test_scale_out_completes_and_balances(self):
        cluster = make_cluster(initial=2)
        migration = Migration(cluster, 4, DB_KB)
        steps = 0
        while not migration.completed:
            migration.step(10.0)
            steps += 1
            assert steps < 100000
        assert cluster.num_active_nodes == 4
        fractions = cluster.data_fractions()
        assert len(fractions) == 4
        assert max(fractions.values()) < 1.3 * min(fractions.values())

    def test_scale_in_completes_and_compacts(self):
        cluster = make_cluster(initial=5)
        migration = Migration(cluster, 2, DB_KB)
        while not migration.completed:
            migration.step(10.0)
        assert cluster.num_active_nodes == 2
        assert cluster.plan.num_nodes == 2
        fractions = cluster.data_fractions()
        assert set(fractions) == {0, 1}

    def test_allocation_follows_schedule(self):
        cluster = make_cluster(initial=3)
        migration = Migration(cluster, 14, DB_KB)
        allocations = [cluster.num_active_nodes]
        while not migration.completed:
            migration.step(migration.round_seconds)
            allocations.append(cluster.num_active_nodes)
        # Just-in-time growth: 6, 9, 12, then 14 (plus the final state).
        assert allocations[0] == 6
        assert allocations[-1] == 14
        assert allocations == sorted(allocations)

    def test_fraction_completed_monotone(self):
        cluster = make_cluster(initial=2)
        migration = Migration(cluster, 6, DB_KB)
        previous = 0.0
        while not migration.completed:
            migration.step(5.0)
            assert migration.fraction_completed >= previous - 1e-9
            previous = migration.fraction_completed
        assert migration.fraction_completed == 1.0

    def test_step_after_completion_is_stable(self):
        cluster = make_cluster(initial=2)
        migration = Migration(cluster, 3, DB_KB)
        while not migration.completed:
            migration.step(50.0)
        info = migration.step(1.0)
        assert info.completed
        assert info.machines_allocated == 3
        assert not info.blocked_partitions

    def test_rejects_bad_dt(self):
        migration = Migration(make_cluster(initial=2), 3, DB_KB)
        with pytest.raises(MigrationError):
            migration.step(0.0)


class TestBlocking:
    def test_active_partitions_blocked(self):
        cluster = make_cluster(initial=2)
        migration = Migration(
            cluster, 4, DB_KB, MigrationConfig(chunk_kb=8000.0)
        )
        # Step past one chunk period to observe a pause.
        info = migration.step(MigrationConfig(chunk_kb=8000.0).chunk_period_s + 1.0)
        assert info.blocked_partitions
        for pid, (single, frac) in info.blocked_partitions.items():
            assert single > 0
            assert 0 < frac <= 1.0

    def test_small_chunks_rare_blocks(self):
        cluster = make_cluster(initial=2)
        migration = Migration(cluster, 4, DB_KB, MigrationConfig(chunk_kb=1000.0))
        info = migration.step(1.0)  # less than one 4.1 s chunk period
        assert not info.blocked_partitions

    def test_moves_rows_with_data(self):
        cluster = Cluster(
            b2w_schema(), initial_nodes=1, partitions_per_node=2,
            num_buckets=64, max_nodes=4,
        )
        from repro.b2w.schema import STOCK

        for i in range(200):
            key = f"sku-{i}"
            cluster.route(key).put(STOCK, key, {"sku": key, "available": 1})
        migration = Migration(cluster, 2, DB_KB)
        while not migration.completed:
            migration.step(100.0)
        counts = [node.row_count() for node in cluster.active_nodes()]
        assert sum(counts) == 200
        assert min(counts) > 50  # roughly half each
