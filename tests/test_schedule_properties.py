"""Property-based tests for the migration scheduler.

The schedule invariants must hold for every (B, A, P): validation
passes, the round count is optimal, the time-average allocation matches
Algorithm 4 exactly, and the total duration matches Equation 3.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.capacity as cap
from repro.core.params import SystemParameters
from repro.core.schedule import build_move_schedule

sizes = st.integers(min_value=1, max_value=24)
partitions = st.integers(min_value=1, max_value=8)


@given(before=sizes, after=sizes, p=partitions)
@settings(max_examples=200, deadline=None)
def test_schedule_invariants(before, after, p):
    schedule = build_move_schedule(before, after, p)
    schedule.validate()

    if before == after:
        assert schedule.num_rounds == 0
        return

    smaller, larger = min(before, after), max(before, after)
    delta = larger - smaller

    # Optimal round count: B*delta pairs at min(B, delta) parallelism,
    # kept tight by the three-phase trick.
    assert schedule.num_rounds == max(smaller, delta)

    # Time-average allocation agrees with Algorithm 4 (Appendix B).
    assert schedule.average_machines_allocated() == pytest.approx(
        cap.average_machines_allocated(before, after)
    )

    # Duration agrees with Equation 3.
    params = SystemParameters(partitions_per_node=p)
    assert schedule.total_seconds(params) == pytest.approx(
        cap.move_time_seconds(before, after, params)
    )


@given(before=sizes, after=sizes)
@settings(max_examples=100, deadline=None)
def test_allocation_monotone_and_bounded(before, after):
    schedule = build_move_schedule(before, after)
    allocations = [rnd.machines_allocated for rnd in schedule.rounds]
    if not allocations:
        return
    lo, hi = min(before, after), max(before, after)
    assert all(lo <= a <= hi for a in allocations)
    if after > before:
        assert allocations == sorted(allocations)
        assert allocations[-1] == after
    else:
        assert allocations == sorted(allocations, reverse=True)
        assert allocations[0] == before


@given(before=sizes, after=sizes)
@settings(max_examples=100, deadline=None)
def test_rounds_are_matchings_with_equal_size(before, after):
    """Every round is a matching and all rounds move equal data."""
    schedule = build_move_schedule(before, after)
    sizes_seen = set()
    for rnd in schedule.rounds:
        machines = [m for t in rnd.transfers for m in (t.sender, t.receiver)]
        assert len(machines) == len(set(machines))
        sizes_seen.add(len(rnd.transfers))
    assert len(sizes_seen) <= 1
