"""Tests for the serving-path observability layer: per-request trace
context, planner decision audit + ``repro.cli explain``, SLO burn-rate
monitoring, debug bundles, and the labelled Prometheus export.

Everything runs on simulated/virtual time — zero real sleeps — and the
end-to-end class pins the acceptance criterion that enabling tracing
and SLO monitoring leaves engine results bit-identical.
"""

import json

import numpy as np
import pytest

from repro.core.audit import (
    DecisionAudit,
    PlanCandidate,
    audit_event_fields,
)
from repro.core.params import SystemParameters
from repro.core.policy import PredictivePolicy
from repro.engine.simulator import EngineConfig
from repro.errors import ConfigurationError
from repro.prediction.online import OnlinePredictor
from repro.prediction.spar import SPARPredictor
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    OnlineControlLoop,
    ServeSession,
    ServerEngine,
    trace_arrivals,
)
from repro.telemetry import Telemetry
from repro.telemetry.bundle import (
    resolve_dump_path,
    verify_bundle,
    write_debug_bundle,
)
from repro.telemetry.export import read_jsonl, render_prometheus, write_jsonl
from repro.telemetry.metrics import labeled, split_labels
from repro.telemetry.report import format_explain, render_explain
from repro.telemetry.requesttrace import SHED_QUEUE_LIMIT, RequestTracer
from repro.telemetry.slo import SLOConfig, SLOMonitor
from repro.telemetry.tracer import Tracer
from repro.workloads.trace import LoadTrace

SAT = 12.0  # small per-node saturation keeps arrival counts test-sized


def small_config(**kwargs):
    defaults = dict(max_nodes=4, saturation_rate_per_node=SAT, db_size_kb=5 * 1024)
    defaults.update(kwargs)
    return EngineConfig(**defaults)


def small_params(**kwargs):
    defaults = dict(interval_seconds=60.0, d_seconds=120.0)
    defaults.update(kwargs)
    return SystemParameters.from_saturation(SAT, **defaults)


def small_online(refit_every=12):
    spar = SPARPredictor(period=12, n_periods=2, n_recent=2, max_horizon=4)
    return OnlinePredictor(spar, refit_every=refit_every)


def traced_engine(**kwargs):
    defaults = dict(
        initial_nodes=1,
        slot_seconds=60.0,
        admission=AdmissionConfig(queue_limit_seconds=5.0),
        seed=3,
        telemetry=Telemetry(),
        trace_requests=True,
    )
    defaults.update(kwargs)
    return ServerEngine(small_config(), **defaults)


# ----------------------------------------------------------------------
# Satellite regressions: tracer sequence clock, labelled metrics
# ----------------------------------------------------------------------
class TestSpanSequenceClock:
    def test_untimestamped_finish_advances_past_start(self):
        # Regression: finish(at=None) used to collapse the span to zero
        # duration; it must close at the tracer's sequence clock instead.
        tracer = Tracer()
        outer = tracer.begin("plan")
        tracer.begin("inner").finish()
        outer.finish()
        assert outer.closed
        assert outer.end > outer.start
        assert outer.duration > 0.0

    def test_simulated_time_span_clamps_to_its_start(self):
        # A span dated on the simulated clock sits far ahead of the
        # sequence counter; an untimestamped finish must not rewind it.
        tracer = Tracer()
        span = tracer.begin("migration", at=500.0)
        span.finish()
        assert span.end == 500.0
        assert span.duration == 0.0

    def test_finish_all_closes_detached_spans(self):
        tracer = Tracer()
        root = tracer.begin_detached("request", at=10.0)
        child = tracer.begin_detached("serve", at=10.0, parent=root)
        tracer.finish_all()
        assert root.closed and child.closed
        assert root.status == "abandoned"
        assert root.end >= root.start and child.end >= child.start


class TestLabelledMetrics:
    def test_labeled_is_canonical(self):
        assert labeled("serve.admit.shed", node=2) == 'serve.admit.shed{node="2"}'
        # Keys sort, so label order never changes the registry key.
        assert labeled("m", b=1, a=2) == labeled("m", a=2, b=1)
        assert labeled("m") == "m"
        with pytest.raises(ConfigurationError):
            labeled('m{a="1"}', b=2)

    def test_split_labels_round_trips(self):
        name = labeled("serve.admit.shed", node=3, zone="a")
        base, pairs = split_labels(name)
        assert base == "serve.admit.shed"
        assert dict(pairs) == {"node": "3", "zone": "a"}
        assert split_labels("plain") == ("plain", ())
        with pytest.raises(ConfigurationError):
            split_labels("m{node=3}")

    def test_prometheus_emits_one_family_with_sorted_series(self):
        tel = Telemetry()
        tel.counter(labeled("serve.admit.shed", node=1)).inc(2)
        tel.counter(labeled("serve.admit.shed", node=0)).inc(5)
        tel.counter("serve.ticks").inc(7)
        text = render_prometheus(tel)
        assert text.count("# TYPE repro_serve_admit_shed_total counter") == 1
        assert 'repro_serve_admit_shed_total{node="0"} 5' in text
        assert 'repro_serve_admit_shed_total{node="1"} 2' in text
        assert text.index('{node="0"}') < text.index('{node="1"}')
        # Byte-stable: rendering twice is identical.
        assert render_prometheus(tel) == text

    def test_per_node_admission_counters(self):
        tel = Telemetry()
        ctl = AdmissionController(AdmissionConfig(queue_limit_seconds=1.0), tel)
        ctl.decide(0, 0.5)
        ctl.decide(0, 3.0)
        ctl.decide(1, 0.1)
        assert tel.counter(labeled("serve.admit.accepted", node=0)).value == 1
        assert tel.counter(labeled("serve.admit.shed", node=0)).value == 1
        assert tel.counter(labeled("serve.admit.accepted", node=1)).value == 1
        # Aggregates stay alongside the labelled pair (dashboards grep them).
        assert tel.counter("serve.admitted").value == 2
        assert tel.counter("serve.rejected").value == 1
        assert tel.gauge("serve.admit.retry_after_s").value == pytest.approx(2.0)


# ----------------------------------------------------------------------
# SLO burn-rate monitor
# ----------------------------------------------------------------------
class TestSLOMonitor:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SLOConfig(objective=1.0)
        with pytest.raises(ConfigurationError):
            SLOConfig(objective=0.0)
        with pytest.raises(ConfigurationError):
            SLOConfig(latency_threshold_ms=0.0)
        with pytest.raises(ConfigurationError):
            SLOConfig(fast_window_s=600.0, slow_window_s=300.0)
        with pytest.raises(ConfigurationError):
            SLOConfig(burn_threshold=0.0)
        with pytest.raises(ConfigurationError):
            SLOConfig(min_samples=0)

    def test_classify_uses_latency_threshold(self):
        mon = SLOMonitor(SLOConfig(latency_threshold_ms=500.0))
        assert mon.classify(499.9) and mon.classify(500.0)
        assert not mon.classify(500.1)

    def test_burn_rate_is_error_rate_over_budget(self):
        mon = SLOMonitor(SLOConfig(objective=0.9, burn_threshold=100.0))
        mon.observe(1.0, good=8, bad=2)  # error rate 0.2, budget 0.1
        assert mon.fast_burn == pytest.approx(2.0)
        assert mon.slow_burn == pytest.approx(2.0)
        assert not mon.alerting

    def test_fires_once_and_resolves_on_fast_window(self):
        tel = Telemetry()
        config = SLOConfig(
            objective=0.9,
            latency_threshold_ms=100.0,
            fast_window_s=10.0,
            slow_window_s=1000.0,
            burn_threshold=2.0,
        )
        mon = SLOMonitor(config, tel)
        for t in range(1, 21):
            mon.observe(float(t), good=6, bad=4)  # burn 4.0 in both windows
        assert mon.alerting and mon.alerts_fired == 1
        fires = [e for e in tel.timeline.events_of("slo_alert")]
        assert [e["state"] for e in fires] == ["fire"]
        assert tel.counter("slo.alerts_fired").value == 1

        # Good traffic clears the fast window; the slow window still
        # remembers the incident, but the page resolves anyway.
        for t in range(21, 33):
            mon.observe(float(t), good=10, bad=0)
        assert not mon.alerting
        assert mon.slow_burn >= config.burn_threshold
        states = [e["state"] for e in tel.timeline.events_of("slo_alert")]
        assert states == ["fire", "resolve"]
        assert mon.alerts_fired == 1  # resolve is not a new page

    def test_needs_both_windows_to_fire(self):
        mon = SLOMonitor(
            SLOConfig(
                objective=0.9,
                fast_window_s=5.0,
                slow_window_s=1000.0,
                burn_threshold=2.0,
            )
        )
        # Long good history keeps the slow burn low; a short error blip
        # saturates only the fast window.
        for t in range(1, 200):
            mon.observe(float(t), good=10, bad=0)
        for t in range(200, 204):
            mon.observe(float(t), good=0, bad=10)
        assert mon.fast_burn >= 2.0
        assert mon.slow_burn < 2.0
        assert not mon.alerting

    def test_min_samples_guards_startup_blips(self):
        mon = SLOMonitor(
            SLOConfig(objective=0.9, burn_threshold=2.0, min_samples=20)
        )
        # One bad request among the first few saturates both windows,
        # but the sample guard keeps the page quiet...
        mon.observe(1.0, good=3, bad=1)
        assert mon.fast_burn >= 2.0 and mon.slow_burn >= 2.0
        assert not mon.alerting
        # ...until enough traffic has been seen to trust the rate.
        for t in range(2, 8):
            mon.observe(float(t), good=3, bad=1)
        assert mon.alerting

    def test_idle_status_reports_full_budget(self):
        mon = SLOMonitor()
        state = mon.status()
        assert state["good_fraction"] == 1.0
        assert state["alerting"] is False
        assert state["alerts_fired"] == 0

    def test_shed_requests_burn_budget(self):
        engine = traced_engine(
            admission=AdmissionConfig(queue_limit_seconds=0.01),
            slo=SLOConfig(objective=0.5, burn_threshold=1000.0),
        )
        for _ in range(5):
            engine.submit()
        engine.tick()
        assert engine.slo_monitor.bad_total >= 1  # 503s count as bad
        assert engine.slo_monitor.good_total + engine.slo_monitor.bad_total == 5

    def test_healthz_degraded_outranks_shedding(self):
        engine = traced_engine(
            admission=AdmissionConfig(queue_limit_seconds=0.01),
            slo=SLOConfig(
                objective=0.9, fast_window_s=60.0, slow_window_s=60.0,
                burn_threshold=1.0, min_samples=1,
            ),
        )
        for _ in range(10):
            engine.submit()
        engine.tick()
        health = engine.healthz()
        assert engine.slo_monitor.alerting
        assert health["status"] == "degraded"
        assert health["slo"]["alerts_fired"] == 1


# ----------------------------------------------------------------------
# Planner decision audit
# ----------------------------------------------------------------------
class TestDecisionAudit:
    def test_plateau_fast_path_skips_the_dp(self):
        params = small_params()
        policy = PredictivePolicy(params, max_machines=4)
        load = np.full(5, params.q * 0.9)
        audit = DecisionAudit()
        decision = policy.decide(load, 1, audit=audit)
        assert decision.target is None and not decision.planned
        assert audit.reason == "plateau"
        assert audit.chosen_machines == 1
        assert audit.candidates == []

    def test_move_records_candidates_schedule_and_runner_up(self):
        params = small_params()
        policy = PredictivePolicy(params, max_machines=4)
        # Demand doubles next interval: the DP must start the scale-out
        # now for the capacity to be there in time.
        load = np.array([0.9, 1.8, 1.8, 1.8]) * params.q
        audit = DecisionAudit()
        decision = policy.decide(load, 1, audit=audit)
        assert decision.target == 2 and decision.planned and not decision.fallback
        assert audit.reason == "move"
        assert audit.target == 2 and audit.chosen_machines == 2
        assert audit.plan_cost is not None and np.isfinite(audit.plan_cost)
        assert audit.schedule  # rendered coalesced moves
        assert audit.candidates and any(c.feasible for c in audit.candidates)
        if audit.runner_up is not None:
            assert audit.runner_up.machines != 2
            assert "tie-break" in audit.rejection

    def test_deferred_move_audits_as_receding_hold(self):
        params = small_params()
        policy = PredictivePolicy(params, max_machines=4)
        # The rise is two intervals out, so the plan schedules the move
        # for later and this cycle holds (replan with fresher data).
        load = np.array([0.9, 0.9, 1.8, 1.8]) * params.q
        audit = DecisionAudit()
        decision = policy.decide(load, 1, audit=audit)
        assert decision.target is None and decision.planned
        assert audit.reason == "receding-hold"
        assert any("scale-out" in move for move in audit.schedule)

    def test_fallback_records_infeasibility_and_candidates(self):
        params = small_params()
        policy = PredictivePolicy(params, max_machines=4)
        # The spike exceeds what even max_machines can serve: no plan.
        load = np.array([0.5, 4.5, 4.5]) * params.q
        audit = DecisionAudit()
        decision = policy.decide(load, 1, audit=audit)
        assert decision.fallback and decision.target == 4
        assert audit.reason == "fallback"
        assert audit.infeasible_detail
        assert audit.candidates  # filled even on the infeasible path
        assert all(not c.feasible for c in audit.candidates if c.cost == float("inf"))
        fields = audit_event_fields(
            audit,
            interval=7,
            measured_rate=0.5 * params.q,
            predicted_rate=3.8 * params.q,
            window_intervals=2,
            interval_seconds=60.0,
        )
        json.dumps(fields)  # inf costs must be JSON-safe (None)
        assert all(
            c["cost"] is None
            for c, orig in zip(fields["candidates"], audit.candidates)
            if not orig.feasible
        )

    def test_scale_in_waits_for_confirmation_votes(self):
        params = small_params()
        policy = PredictivePolicy(params, max_machines=4, scale_in_confirmations=3)
        load = np.full(4, params.q * 0.4)
        audit = DecisionAudit()
        decision = policy.decide(load, 3, audit=audit)
        assert decision.target is None
        assert audit.reason == "scale-in-pending"
        assert audit.scale_in_votes == 1

    def test_machine_hours_delta(self):
        audit = DecisionAudit(
            plan_cost=8.0, runner_up=PlanCandidate(machines=3, cost=10.0)
        )
        assert audit.machine_hours_delta(3600.0) == pytest.approx(2.0)
        assert audit.machine_hours_delta(60.0) == pytest.approx(2.0 / 60.0)
        assert DecisionAudit().machine_hours_delta(60.0) is None
        infeasible = DecisionAudit(
            plan_cost=8.0, runner_up=PlanCandidate(machines=3, cost=float("inf"))
        )
        assert infeasible.machine_hours_delta(60.0) is None


# ----------------------------------------------------------------------
# Per-request trace context
# ----------------------------------------------------------------------
class TestRequestTracing:
    def test_requires_enabled_telemetry(self):
        with pytest.raises(ConfigurationError):
            ServerEngine(small_config(), trace_requests=True)
        with pytest.raises(ConfigurationError):
            RequestTracer(Telemetry(enabled=False))

    def test_accepted_request_span_tree(self):
        engine = traced_engine()
        outcomes = []
        for _ in range(3):
            engine.submit(outcomes.append)
        engine.tick()

        tracer = engine.telemetry.tracer
        roots = tracer.named("request")
        assert len(roots) == 3
        assert [r.attrs["trace_id"] for r in roots] == [1, 2, 3]
        admissions = tracer.named("admission")
        serves = tracer.named("serve")
        assert len(admissions) == len(serves) == 3
        for root, adm, srv, outcome in zip(roots, admissions, serves, outcomes):
            assert outcome.trace_id == root.attrs["trace_id"]
            assert root.attrs["origin"] == "engine"
            assert root.attrs["node"] == outcome.node_id
            assert "queue_estimate" in root.attrs
            assert adm.parent_id == root.span_id and adm.attrs["decision"] == "accept"
            assert srv.parent_id == root.span_id
            assert srv.attrs["latency_ms"] == pytest.approx(
                outcome.latency_ms, abs=1e-6
            )
            assert root.end == pytest.approx(outcome.completed_at)
            assert root.duration > 0.0

    def test_shed_request_closes_with_reason(self):
        engine = traced_engine(
            admission=AdmissionConfig(queue_limit_seconds=0.01)
        )
        outcomes = []
        engine.submit(outcomes.append)  # empty queue: admitted
        engine.submit(outcomes.append)  # behind the first: shed
        shed_roots = [
            s
            for s in engine.telemetry.tracer.named("request")
            if s.status == "shed"
        ]
        assert len(shed_roots) == 1
        root = shed_roots[0]
        assert root.attrs["shed_reason"] == SHED_QUEUE_LIMIT
        assert root.closed and root.end == root.start  # failed fast
        admission = [
            s
            for s in engine.telemetry.tracer.named("admission")
            if s.parent_id == root.span_id
        ][0]
        assert admission.attrs["decision"] == "shed"
        assert admission.attrs["shed_reason"] == SHED_QUEUE_LIMIT
        assert admission.attrs["retry_after_s"] >= 1.0
        assert outcomes[-1].status == 503
        assert outcomes[-1].trace_id == root.attrs["trace_id"]

    def test_request_overlapping_migration_links_to_its_span(self):
        engine = traced_engine()
        engine.sim.start_move(2)
        migration_id = engine.sim.migration_span_id
        assert migration_id is not None

        engine.submit()
        root = engine.telemetry.tracer.named("request")[-1]
        assert root.attrs["migration_span"] == migration_id

        for _ in range(10_000):
            if not engine.sim.migration_active:
                break
            engine.tick()
        assert not engine.sim.migration_active

        engine.submit()
        after = engine.telemetry.tracer.named("request")[-1]
        assert "migration_span" not in after.attrs

    def test_minted_context_carries_the_edge_origin(self):
        engine = traced_engine()
        ctx = engine.request_tracer.mint("loadgen")
        engine.submit(trace=ctx)
        engine.tick()
        root = engine.telemetry.tracer.named("request")[0]
        assert root.attrs["origin"] == "loadgen"
        assert root.attrs["trace_id"] == ctx.trace_id
        assert engine.request_tracer.minted == 1


# ----------------------------------------------------------------------
# repro.cli explain — golden rendering
# ----------------------------------------------------------------------
def _synthetic_dump(path):
    """A hand-built run: one plateau, one audited move, a scored
    forecast, an SLO fire/resolve pair, shedding on node 0 and two
    request traces (one of which overlapped a migration)."""
    tel = Telemetry()
    tel.event(
        "audit", 240.0, interval=3, measured_rate=4.0, predicted_rate=4.2,
        window_intervals=4, reason="plateau", candidates=[],
        chosen_machines=1, plan_cost=None, schedule=[], target=None,
        runner_up=None, rejection=None, machine_hours_delta=None,
        scale_in_votes=0, infeasible_detail=None,
    )
    tel.event(
        "audit", 300.0, interval=4, measured_rate=9.0, predicted_rate=10.5,
        window_intervals=4, reason="move",
        candidates=[
            {"machines": 1, "cost": None},
            {"machines": 2, "cost": 8.0},
            {"machines": 3, "cost": 9.0},
        ],
        chosen_machines=2, plan_cost=8.0,
        schedule=["interval 0: 1 -> 2 (+1)"], target=2, runner_up=3,
        rejection=(
            "3 machines feasible at cost 9 vs 8 machine-intervals; "
            "fewest-machines tie-break prefers 2"
        ),
        machine_hours_delta=0.016667, scale_in_votes=0, infeasible_detail=None,
    )
    tel.event("forecast", 360.0, interval=5, predicted=10.5, actual=9.8)
    tel.event(
        "slo_alert", 420.0, state="fire", fast_burn=12.5, slow_burn=10.2,
        objective=0.999,
    )
    tel.event(
        "slo_alert", 600.0, state="resolve", fast_burn=1.5, slow_burn=10.0,
        objective=0.999,
    )
    tel.counter(labeled("serve.admit.accepted", node=0)).inc(90)
    tel.counter(labeled("serve.admit.shed", node=0)).inc(10)

    tracer = tel.tracer
    root = tracer.begin_detached(
        "request", at=299.0, trace_id=1, origin="loadgen", node=0,
        partition=0, queue_estimate=0.5, migration_span=7,
    )
    tracer.begin_detached(
        "admission", at=299.0, parent=root, decision="accept"
    ).finish(at=299.0)
    tracer.begin_detached("serve", at=299.0, parent=root).finish(at=299.4)
    root.finish(at=299.4)
    shed = tracer.begin_detached(
        "request", at=420.0, trace_id=2, origin="http", node=0,
        partition=1, queue_estimate=9.0,
    )
    shed.attrs["shed_reason"] = SHED_QUEUE_LIMIT
    shed.finish(at=420.0, status="shed")

    write_jsonl(tel, path)
    return path


EXPECTED_EXPLAIN = """\
Planner decisions (2 replans audited)
t s  interval  reason   measured/s  predicted/s  actual/s  action
---  --------  -------  ----------  -----------  --------  ------
240         3  plateau         4.0          4.2         -    hold
300         4     move         9.0         10.5       9.8       2

Decision detail @ t=300s (interval 4, move)
  candidates (machine-intervals): 1m=inf, 2m=8, 3m=9
  schedule: interval 0: 1 -> 2 (+1)
  runner-up rejected: 3 machines feasible at cost 9 vs 8 machine-intervals; fewest-machines tie-break prefers 2
  machine-hours saved vs runner-up: 0.017

SLO burn-rate alerts
t s  state    fast burn  slow burn  objective
---  -------  ---------  ---------  ---------
420     fire      12.50      10.20    99.900%
600  resolve       1.50      10.00    99.900%

Admission by node
node  shed  accepted
----  ----  --------
   0    10        90

Request traces
  2 traced requests | 1 shed | 1 overlapped a migration"""


class TestExplainGolden:
    def test_format_explain_matches_golden(self, tmp_path):
        path = _synthetic_dump(tmp_path / "dump.jsonl")
        assert format_explain(read_jsonl(path)) == EXPECTED_EXPLAIN

    def test_render_explain_accepts_bare_dump(self, tmp_path):
        path = _synthetic_dump(tmp_path / "dump.jsonl")
        assert render_explain(str(path)) == EXPECTED_EXPLAIN

    def test_empty_dump_renders_placeholders(self, tmp_path):
        tel = Telemetry()
        tel.counter("serve.ticks").inc()
        path = tmp_path / "empty.jsonl"
        write_jsonl(tel, path)
        out = format_explain(read_jsonl(path))
        assert "no audit events recorded" in out
        assert "none fired" in out


# ----------------------------------------------------------------------
# Debug bundles
# ----------------------------------------------------------------------
def _bundle_telemetry():
    tel = Telemetry()
    tel.counter("serve.ticks").inc(4)
    tel.gauge("serve.machines").set(2.0)
    tel.event("audit", 60.0, interval=0, reason="plateau")
    tel.tracer.begin_detached("request", at=10.0, trace_id=1)  # left open
    return tel


class TestDebugBundle:
    def test_layout_manifest_and_verify(self, tmp_path):
        out = tmp_path / "bundle"
        manifest = write_debug_bundle(
            _bundle_telemetry(), out,
            config={"command": "serve"}, report={"offered": 4},
        )
        names = set(manifest["files"])
        assert names == {
            "telemetry.jsonl", "metrics.prom", "config.json", "report.json"
        }
        assert verify_bundle(out)["files"] == manifest["files"]
        assert json.loads((out / "config.json").read_text()) == {
            "command": "serve"
        }
        # The open request span was finished before export.
        dump = read_jsonl(out / "telemetry.jsonl")
        (span,) = dump.spans_named("request")
        assert span["end"] is not None and span["status"] == "abandoned"

    def test_bundles_are_reproducible(self, tmp_path):
        a = write_debug_bundle(
            _bundle_telemetry(), tmp_path / "a", config={"seed": 1}
        )
        b = write_debug_bundle(
            _bundle_telemetry(), tmp_path / "b", config={"seed": 1}
        )
        assert a == b  # same digests byte for byte

    def test_verify_detects_corruption_and_truncation(self, tmp_path):
        out = tmp_path / "bundle"
        write_debug_bundle(_bundle_telemetry(), out)
        dump = out / "telemetry.jsonl"
        dump.write_text(dump.read_text() + "\n")
        with pytest.raises(ConfigurationError, match="digest mismatch"):
            verify_bundle(out)
        dump.unlink()
        with pytest.raises(ConfigurationError, match="missing file"):
            verify_bundle(out)
        with pytest.raises(ConfigurationError, match="MANIFEST"):
            verify_bundle(tmp_path / "nowhere")

    def test_resolve_dump_path(self, tmp_path):
        out = tmp_path / "bundle"
        write_debug_bundle(_bundle_telemetry(), out)
        assert resolve_dump_path(out) == out / "telemetry.jsonl"
        bare = tmp_path / "dump.jsonl"
        bare.write_text("")
        assert resolve_dump_path(bare) == bare
        with pytest.raises(ConfigurationError):
            resolve_dump_path(tmp_path)  # a directory, but not a bundle


# ----------------------------------------------------------------------
# End to end: traced + SLO-monitored serve run, bundle, explain
# ----------------------------------------------------------------------
class TestObservabilityEndToEnd:
    """One virtual-clock serve run with every observability layer on:
    request tracing, decision audit via the online control loop, SLO
    burn-rate alerting during an unpredicted flash crowd, and a debug
    bundle that round-trips through ``repro.cli explain``.

    The twin run with all of it off pins the acceptance criterion:
    instrumentation never touches the engine's RNG or state, so the
    served latencies are bit-identical.
    """

    N_SLOTS = 80
    FIT_SLOT = 62  # min_training for the small SPAR above

    def build(self, *, observed):
        online = small_online(refit_every=12)
        assert online.min_training == self.FIT_SLOT
        loop = OnlineControlLoop(
            small_params(), online,
            measurement_slot_seconds=60.0, horizon=4, max_machines=4,
        )
        engine = ServerEngine(
            small_config(),
            initial_nodes=1,
            slot_seconds=60.0,
            admission=AdmissionConfig(queue_limit_seconds=5.0),
            controller=loop,
            seed=7,
            telemetry=Telemetry() if observed else None,
            trace_requests=observed,
            # Availability-flavoured SLO: the latency threshold sits far
            # above this small config's normal tail, so only shed
            # requests burn budget — the alert isolates the flash crowd.
            slo=SLOConfig(
                objective=0.9,
                latency_threshold_ms=60_000.0,
                fast_window_s=120.0,
                slow_window_s=600.0,
                burn_threshold=2.0,
            ) if observed else None,
        )
        t = np.arange(self.N_SLOTS, dtype=float)
        rates = 4.0 + 3.0 * np.sin(2 * np.pi * t / 12.0)
        rates[66:] = 10.0 + 7.0 * np.sin(2 * np.pi * t[66:] / 12.0)
        rates[70:76] *= 5.0  # unpredicted flash crowd, post-fit
        trace = LoadTrace(rates * 60.0, slot_seconds=60.0, name="obs-e2e")
        arrivals = trace_arrivals(trace, seed=9)
        return engine, loop, ServeSession(engine, arrivals)

    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        engine, loop, session = self.build(observed=True)
        report = session.run(self.N_SLOTS * 60.0)
        report_text = session.format_report()
        bundle_dir = tmp_path_factory.mktemp("observed") / "bundle"
        write_debug_bundle(
            engine.telemetry, bundle_dir,
            config={"scenario": "obs-e2e", "slots": self.N_SLOTS},
            report=dict(report.summary()),
        )
        return engine, loop, report, bundle_dir, report_text

    def test_tracing_leaves_engine_results_bit_identical(self, outcome):
        engine, _, report, _, _ = outcome
        twin_engine, _, twin_session = self.build(observed=False)
        twin_report = twin_session.run(self.N_SLOTS * 60.0)
        assert twin_report.latencies_ms == report.latencies_ms
        assert twin_report.summary() == report.summary()
        assert twin_engine.sim.machines_allocated == engine.sim.machines_allocated
        assert twin_engine.sim.moves_started == engine.sim.moves_started
        assert twin_engine.max_node_queue_seconds == engine.max_node_queue_seconds

    def test_every_request_left_a_trace(self, outcome):
        engine, _, report, _, _ = outcome
        roots = engine.telemetry.tracer.named("request")
        assert len(roots) == report.offered
        assert engine.request_tracer.minted == report.offered
        assert all(r.attrs["origin"] == "loadgen" for r in roots)
        shed = [r for r in roots if r.status == "shed"]
        assert len(shed) == report.rejected > 0
        overlapped = [r for r in roots if "migration_span" in r.attrs]
        assert overlapped  # reconfigurations ran under live traffic

    def test_audit_trail_joins_predictions_with_measurements(self, outcome):
        engine, loop, _, bundle_dir, _ = outcome
        dump = read_jsonl(bundle_dir / "telemetry.jsonl")
        audits = dump.events_of("audit")
        assert audits
        assert len(audits) == int(dump.counters["control.replans"])
        # Replans only happen once the SPAR model is fitted (the first
        # fit closes at exactly the FIT_SLOT interval boundary).
        assert all(float(e["t"]) >= self.FIT_SLOT * 60.0 for e in audits)
        assert all(e["predicted_rate"] is not None for e in audits)
        forecasts = {int(e["interval"]): e for e in dump.events_of("forecast")}
        scored = [
            (e, forecasts[int(e["interval"]) + 1])
            for e in audits
            if int(e["interval"]) + 1 in forecasts
        ]
        assert scored
        for audit, forecast in scored:
            assert forecast["predicted"] == pytest.approx(
                float(audit["predicted_rate"])
            )
        reasons = {e["reason"] for e in audits}
        assert "fallback" in reasons  # the flash crowd outran the plan

    def test_slo_alert_fired_during_flash_crowd(self, outcome):
        engine, _, _, bundle_dir, _ = outcome
        dump = read_jsonl(bundle_dir / "telemetry.jsonl")
        alerts = dump.events_of("slo_alert")
        assert any(e["state"] == "fire" for e in alerts)
        assert engine.slo_monitor.alerts_fired >= 1
        fire_times = [float(e["t"]) for e in alerts if e["state"] == "fire"]
        # Shedding only starts with the late-run overload (the demand
        # regime shift at slot 66 into the slot-70 flash crowd), so no
        # alert can fire during the long calm phase before it.
        assert min(fire_times) >= 66 * 60.0
        health = engine.healthz()
        assert health["slo"]["alerts_fired"] == engine.slo_monitor.alerts_fired
        assert health["slo"]["objective"] == 0.9
        assert 0.0 < health["slo"]["good_fraction"] <= 1.0

    def test_bundle_round_trips_through_explain(self, outcome):
        _, _, report, bundle_dir, _ = outcome
        verify_bundle(bundle_dir)
        text = render_explain(str(bundle_dir))
        assert "Planner decisions" in text and "replans audited" in text
        assert "SLO burn-rate alerts" in text and "fire" in text
        assert "Admission by node" in text
        assert f"{report.offered} traced requests" in text
        assert json.loads((bundle_dir / "report.json").read_text())[
            "offered"
        ] == report.offered

    def test_cli_explain_command(self, outcome, capsys):
        from repro.cli import main

        _, _, _, bundle_dir, _ = outcome
        assert main(["explain", str(bundle_dir)]) == 0
        out = capsys.readouterr().out
        assert "Planner decisions" in out
        assert "SLO burn-rate alerts" in out
        assert main(["explain", str(bundle_dir / "missing")]) == 2

    def test_session_report_includes_slo_line(self, outcome):
        _, _, _, _, report_text = outcome
        assert "SLO 90.000%" in report_text
        assert "burn fast/slow" in report_text
        assert "alerts fired" in report_text
