"""Wall-clock perf spans: recording, rendering, scoping, separation.

The load-bearing invariant is the last class: perf data lives only in
the :class:`PerfRecorder`, never in a :class:`Telemetry` registry, so
runs with perf spans enabled stay bit-identical to runs without.
"""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    PerfRecorder,
    Telemetry,
    active_perf,
    maybe_span,
    perf_session,
    set_default_perf,
    timed,
)
from repro.telemetry.perf import PERF_BUCKETS_MS, PerfStage, render_prometheus_perf


class FakeClock:
    """Deterministic perf_counter_ns stand-in advancing 1 ms per read."""

    def __init__(self, step_ns=1_000_000):
        self.now = 0
        self.step_ns = step_ns

    def __call__(self):
        self.now += self.step_ns
        return self.now


class TestPerfStage:
    def test_record_tracks_count_total_min_max(self):
        stage = PerfStage("engine.tick")
        for ns in (2_000_000, 6_000_000, 1_000_000):
            stage.record(ns)
        assert stage.count == 3
        assert stage.total_ns == 9_000_000
        assert stage.min_ns == 1_000_000
        assert stage.max_ns == 6_000_000
        assert stage.mean_ms() == pytest.approx(3.0)

    def test_quantile_is_bucket_upper_bound(self):
        stage = PerfStage("x")
        for _ in range(100):
            stage.record(300_000)  # 0.3 ms -> bucket le=0.5
        assert stage.quantile_ms(0.5) == 0.5
        assert stage.quantile_ms(0.99) == 0.5

    def test_quantile_validates_range(self):
        with pytest.raises(ConfigurationError):
            PerfStage("x").quantile_ms(1.5)

    def test_empty_stage_reads_zero(self):
        stage = PerfStage("x")
        assert stage.mean_ms() == 0.0
        assert stage.quantile_ms(0.99) == 0.0


class TestPerfRecorder:
    def test_span_records_elapsed_wall_time(self):
        perf = PerfRecorder(clock=FakeClock())
        with perf.span("worker.step"):
            pass
        stage = perf.stage("worker.step")
        assert stage is not None
        assert stage.count == 1
        assert stage.total_ns == 1_000_000  # one clock step inside the span

    def test_overhead_gauge_self_measures(self):
        perf = PerfRecorder(clock=FakeClock())
        with perf.span("a"):
            pass
        with perf.span("a"):
            pass
        # One extra clock read per span closes into the overhead gauge.
        assert perf.overhead_ns == 2_000_000
        assert perf.overhead_ms() == pytest.approx(2.0)

    def test_records_sorted_by_stage_name(self):
        perf = PerfRecorder(clock=FakeClock())
        with perf.span("zeta"):
            pass
        with perf.span("alpha"):
            pass
        assert [r["name"] for r in perf.records()] == ["alpha", "zeta"]

    def test_report_lines_include_overhead(self):
        perf = PerfRecorder(clock=FakeClock())
        with perf.span("engine.tick"):
            pass
        lines = perf.report_lines()
        assert lines[0] == "wall-clock stages (ms):"
        assert any("engine.tick" in line for line in lines)
        assert "measurement overhead" in lines[-1]


class TestPrometheusRendering:
    def test_renders_histogram_family_and_overhead_gauge(self):
        perf = PerfRecorder(clock=FakeClock())
        with perf.span("edge.dispatch"):
            pass
        text = render_prometheus_perf(perf)
        assert "# TYPE repro_perf_edge_dispatch_ms histogram" in text
        assert 'repro_perf_edge_dispatch_ms_bucket{le="+Inf"} 1' in text
        assert "repro_perf_edge_dispatch_ms_count 1" in text
        assert "repro_perf_overhead_ms" in text

    def test_bucket_counts_are_cumulative(self):
        perf = PerfRecorder()
        perf.record("x", 300_000)  # 0.3 ms
        perf.record("x", 40_000_000)  # 40 ms
        text = render_prometheus_perf(perf)
        lines = [ln for ln in text.splitlines() if ln.startswith("repro_perf_x_ms_bucket")]
        assert lines[-1] == 'repro_perf_x_ms_bucket{le="+Inf"} 2'
        values = [int(ln.rsplit(" ", 1)[1]) for ln in lines]
        assert values == sorted(values)
        assert len(lines) == len(PERF_BUCKETS_MS) + 1


class TestResolution:
    def test_maybe_span_is_noop_without_recorder(self):
        set_default_perf(None)
        with maybe_span("planner.dp"):
            pass  # must not raise
        assert active_perf() is None

    def test_maybe_span_uses_active_recorder(self):
        perf = PerfRecorder(clock=FakeClock())
        with perf_session(perf):
            assert active_perf() is perf
            with maybe_span("planner.dp"):
                pass
        assert active_perf() is None
        assert perf.stage("planner.dp").count == 1

    def test_explicit_recorder_beats_default(self):
        scoped = PerfRecorder(clock=FakeClock())
        explicit = PerfRecorder(clock=FakeClock())
        with perf_session(scoped):
            with maybe_span("x", explicit):
                pass
        assert explicit.stage("x").count == 1
        assert scoped.stage("x") is None

    def test_perf_session_restores_previous_default(self):
        outer = PerfRecorder()
        with perf_session(outer):
            with perf_session(PerfRecorder()):
                pass
            assert active_perf() is outer
        assert active_perf() is None

    def test_timed_decorator_records_when_active(self):
        calls = []

        @timed("spar.fit")
        def fit(x):
            calls.append(x)
            return x * 2

        assert fit(3) == 6  # perf off: plain call
        perf = PerfRecorder(clock=FakeClock())
        with perf_session(perf):
            assert fit(4) == 8
        assert calls == [3, 4]
        assert perf.stage("spar.fit").count == 1


class TestSimTimeSeparation:
    def test_perf_spans_never_touch_telemetry(self):
        telemetry = Telemetry()
        telemetry.counter("serve.admitted").inc()
        before = telemetry.records()
        perf = PerfRecorder()
        with perf_session(perf):
            with maybe_span("engine.tick"):
                telemetry.gauge("serve.machines").set(2.0)
        after = telemetry.records()
        # The gauge write is the only diff; no perf family leaked in.
        assert len(after) == len(before) + 1
        assert all("perf" not in str(r.get("name", "")) for r in after)
