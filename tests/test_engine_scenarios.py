"""Behavioural scenario tests for the engine simulator.

Each scenario pins a physical behaviour the Figure 7-11 experiments rely
on: latency knees, migration interference, routing shifts, and the
interaction between overload and reconfiguration.
"""

import numpy as np
import pytest

from repro.engine.migration import MigrationConfig
from repro.engine.simulator import EngineConfig, EngineSimulator
from repro.workloads.trace import LoadTrace


def flat(rate, seconds, slot=6.0):
    return LoadTrace(np.full(int(seconds / slot), rate * slot), slot_seconds=slot)


class TestLatencyKnee:
    def test_latency_superlinear_in_utilization(self):
        """Doubling utilization from 40% to 80% more than doubles the
        queueing part of p99 (the Figure 7 knee)."""
        config = EngineConfig(max_nodes=1)
        base_ms = config.base_service_ms

        def steady_p99(rate):
            sim = EngineSimulator(config, initial_nodes=1)
            return sim.run(flat(rate, 60)).p99_ms[-1] - base_ms

        low = steady_p99(0.4 * 438)
        high = steady_p99(0.8 * 438)
        assert high > 2.5 * low

    def test_throughput_ceiling_is_saturation(self):
        config = EngineConfig(max_nodes=1)
        sim = EngineSimulator(config, initial_nodes=1)
        result = sim.run(flat(2000.0, 60))
        assert result.served.max() <= 438.0 + 1e-6


class TestMigrationInterference:
    def test_mid_move_capacity_dips_below_target(self):
        """During a big scale-out at high load, latency rises while the
        new machines hold little data (the Equation 7 effect), then
        recovers once the move completes."""
        config = EngineConfig(max_nodes=9)
        sim = EngineSimulator(config, initial_nodes=3)
        migration = sim.start_move(9)
        rate = 3 * 340.0  # near the 3 senders' saturation
        duration = int(migration.total_seconds) + 60
        result = sim.run(flat(rate, duration))
        during = result.p99_ms[: int(migration.total_seconds) - 10]
        after = result.p99_ms[-30:]
        assert during.max() > 2 * after.mean()
        assert after.mean() < 500.0

    def test_boosted_move_finishes_first(self):
        config = EngineConfig(max_nodes=4)
        slow_sim = EngineSimulator(config, initial_nodes=2)
        slow = slow_sim.start_move(4)
        fast_sim = EngineSimulator(config, initial_nodes=2)
        fast = fast_sim.start_move(4, boost=8.0)
        assert fast.total_seconds == pytest.approx(slow.total_seconds / 8)

    def test_big_chunks_spike_p99_but_not_p50(self):
        config = EngineConfig(max_nodes=2)
        sim = EngineSimulator(
            config, initial_nodes=1,
            migration_config=MigrationConfig(chunk_kb=8000.0),
        )
        sim.start_move(2)
        result = sim.run(flat(300.0, 120))
        assert result.p99_ms.max() > 400.0
        assert np.median(result.p50_ms) < 200.0


class TestRoutingShift:
    def test_load_follows_data(self):
        """As buckets land on new machines, the source sheds load: its
        backlog stops growing even though the total rate is constant."""
        config = EngineConfig(max_nodes=2)
        sim = EngineSimulator(config, initial_nodes=1)
        migration = sim.start_move(2)
        # 500 txn/s: overloads one node (438) but not two.
        result = sim.run(flat(500.0, int(migration.total_seconds) + 120))
        # Eventually the cluster keeps up and latency stabilizes.
        assert result.served[-1] == pytest.approx(500.0, rel=0.02)
        assert result.p99_ms[-1] < result.p99_ms.max()

    def test_weights_match_bucket_ownership(self):
        config = EngineConfig(max_nodes=4)
        sim = EngineSimulator(config, initial_nodes=4)
        weights = np.asarray(sim.cluster.node_weights())
        assert weights[:4].sum() == pytest.approx(1.0)
        assert np.allclose(weights[:4], 0.25, atol=0.01)


class TestQueueCap:
    def test_backlog_capped_under_sustained_overload(self):
        config = EngineConfig(max_nodes=1, max_queue_seconds=10.0)
        sim = EngineSimulator(config, initial_nodes=1)
        result = sim.run(flat(2000.0, 300))
        # Latency saturates near the cap instead of growing forever.
        assert result.p50_ms[-1] < 15_000.0
        assert result.p50_ms[-1] == pytest.approx(result.p50_ms[-30], rel=0.2)

    def test_uncapped_queue_grows(self):
        config = EngineConfig(max_nodes=1, max_queue_seconds=0.0)
        sim = EngineSimulator(config, initial_nodes=1)
        result = sim.run(flat(2000.0, 120))
        assert result.p50_ms[-1] > result.p50_ms[60] * 1.5
