"""Distributed serve: transports, edge/worker protocol, soak gates.

Determinism is the backbone of this suite: the edge drives the fleet in
lock step, so a run is bit-identical across transport modes and across a
checkpoint/restore boundary.  Most tests use ``inproc`` mode — the full
wire protocol with no process scheduling in the loop — and a few spawn
real worker processes over pipes/TCP to cover the serialization path.
"""

import errno
import json
import os
import socket

import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.serve import (
    BreakerConfig,
    BrownoutConfig,
    DistributedServeSession,
    SoakConfig,
    TransportError,
    WorkerHandle,
    WorkerServer,
    WorkerSpec,
    build_soak_session,
    poisson_arrivals,
    retry_on_bind_failure,
    run_soak,
)
from repro.serve.checkpoint import CheckpointConfig
from repro.serve.transport import (
    accept_transport,
    bind_listener,
    connect_transport,
)
from repro.telemetry import Telemetry
from repro.telemetry.slo import SLOConfig


def specs(n=2, **kwargs):
    defaults = dict(
        initial_nodes=1,
        max_nodes=4,
        saturation_rate_per_node=120.0,
        queue_limit_seconds=8.0,
    )
    defaults.update(kwargs)
    return [WorkerSpec(worker_id=i, seed=i, **defaults) for i in range(n)]


def make_session(n=2, *, rate=150.0, duration=40.0, seed=3, **kwargs):
    arrivals = poisson_arrivals(rate, duration, seed=seed)
    kwargs.setdefault("mode", "inproc")
    return DistributedServeSession(specs(n), arrivals, **kwargs)


# ----------------------------------------------------------------------
# Transport framing
# ----------------------------------------------------------------------
class TestTransports:
    def test_tcp_round_trip_and_framing(self):
        listener = bind_listener()
        try:
            host, port = listener.getsockname()
            client = connect_transport(host, port, timeout_s=5.0)
            server = accept_transport(listener, timeout_s=5.0)
            message = {"cmd": "step", "arrivals": [[0.5, 1, "edge", 0]] * 100}
            client.send(message)
            assert server.recv(timeout_s=5.0) == message
            server.send({"ok": True})
            assert client.recv(timeout_s=5.0) == {"ok": True}
            client.close()
            with pytest.raises(TransportError):
                server.recv(timeout_s=5.0)  # EOF from closed peer
            server.close()
        finally:
            listener.close()

    def test_tcp_rejects_corrupt_length_prefix(self):
        listener = bind_listener()
        try:
            host, port = listener.getsockname()
            raw = socket.create_connection((host, port), timeout=5.0)
            server = accept_transport(listener, timeout_s=5.0)
            raw.sendall(b"\xff\xff\xff\xff")  # 4 GiB frame: nonsense
            with pytest.raises(TransportError, match="frame"):
                server.recv(timeout_s=5.0)
            raw.close()
            server.close()
        finally:
            listener.close()

    def test_tcp_recv_times_out(self):
        listener = bind_listener()
        try:
            host, port = listener.getsockname()
            client = connect_transport(host, port, timeout_s=5.0)
            server = accept_transport(listener, timeout_s=5.0)
            with pytest.raises(TransportError):
                server.recv(timeout_s=0.05)
            client.close()
            server.close()
        finally:
            listener.close()

    def test_retry_on_bind_failure_retries_then_succeeds(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise OSError(errno.EADDRINUSE, "in use")
            return "bound"

        assert retry_on_bind_failure(flaky, delay_s=0.001) == "bound"
        assert attempts["n"] == 3

    def test_retry_on_bind_failure_gives_up(self):
        def busy():
            raise OSError(errno.EADDRINUSE, "in use")

        with pytest.raises(TransportError, match="could not bind"):
            retry_on_bind_failure(busy, retries=2, delay_s=0.001)

    def test_retry_on_bind_failure_passes_real_errors(self):
        def denied():
            raise OSError(errno.EACCES, "denied")

        with pytest.raises(OSError) as excinfo:
            retry_on_bind_failure(denied, delay_s=0.001)
        assert excinfo.value.errno == errno.EACCES


# ----------------------------------------------------------------------
# Worker protocol
# ----------------------------------------------------------------------
class TestWorkerProtocol:
    def test_hello_advertises_capacity(self):
        server = WorkerServer(specs(1)[0])
        reply = server.handle({"cmd": "hello"})
        assert reply["ok"] is True
        assert reply["worker"] == 0
        assert reply["machines"] >= 1

    def test_step_returns_terminal_outcomes(self):
        server = WorkerServer(
            specs(1, trace_requests=True, collect_telemetry=True)[0]
        )
        reply = server.handle(
            {
                "cmd": "step",
                "now": 1.0,
                "arrivals": [[0.2, 7, "edge", 0], [0.4, 8, "edge", 1]],
            }
        )
        assert reply["ok"] is True
        outcomes = reply["outcomes"]
        assert {o["trace_id"] for o in outcomes} == {7, 8}
        assert all(o["status"] in (200, 503) for o in outcomes)

    def test_unknown_command_is_an_error_reply(self):
        server = WorkerServer(specs(1)[0])
        reply = server.handle({"cmd": "frobnicate"})
        assert reply["ok"] is False
        assert "frobnicate" in reply["error"]

    def test_spec_round_trips_through_dict(self):
        spec = specs(
            1, control="reactive", trace_requests=True, collect_telemetry=True
        )[0]
        assert WorkerSpec.from_dict(spec.as_dict()) == spec

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerSpec(worker_id=-1)
        with pytest.raises(ConfigurationError):
            WorkerSpec(worker_id=0, control="psychic")

    def test_handle_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="transport mode"):
            WorkerHandle(specs(1)[0], "carrier-pigeon")

    def test_inproc_collect_without_post_fails(self):
        handle = WorkerHandle(specs(1)[0], "inproc")
        with pytest.raises(TransportError, match="without a post"):
            handle.collect()


# ----------------------------------------------------------------------
# Edge session: validation, conservation, determinism
# ----------------------------------------------------------------------
class TestDistributedSession:
    def test_rejects_bad_worker_ids(self):
        arrivals = poisson_arrivals(10.0, 5.0, seed=0)
        bad = [WorkerSpec(worker_id=1), WorkerSpec(worker_id=0)]
        with pytest.raises(ConfigurationError, match="worker ids"):
            DistributedServeSession(bad, arrivals, mode="inproc")
        with pytest.raises(ConfigurationError, match="at least one"):
            DistributedServeSession([], arrivals, mode="inproc")

    def test_trace_requests_requires_telemetry(self):
        with pytest.raises(ConfigurationError, match="telemetry"):
            make_session(trace_requests=True)

    def test_conservation_is_exact(self):
        with make_session(rate=300.0) as session:
            report = session.run(40.0)
        assert report.offered > 0
        assert report.conserved
        assert report.offered == (
            report.accepted + report.rejected + report.errored
        )

    def test_work_spreads_across_workers(self):
        with make_session(3, rate=300.0) as session:
            session.run(40.0)
            machines = {
                wid: ad[0] for wid, ad in session.advertised.items()
            }
        assert set(machines) == {0, 1, 2}

    def test_run_is_deterministic(self):
        def once():
            with make_session(rate=200.0, seed=9) as session:
                return session.run(30.0)

        a, b = once(), once()
        assert a.summary() == b.summary()
        assert a.latencies_ms == b.latencies_ms

    def test_healthz_reports_fleet(self):
        with make_session() as session:
            session.run(10.0)
            health = session.healthz()
        assert health["status"] == "ok"
        assert set(health["workers"]) == {"0", "1"}
        assert all(
            w["status"] == "ok" for w in health["workers"].values()
        )
        assert health["breakers"] == {"0": "closed", "1": "closed"}


# ----------------------------------------------------------------------
# Real processes: the pipe path must match inproc bit for bit
# ----------------------------------------------------------------------
@pytest.mark.timeout(300)
class TestProcessBoundary:
    def test_pipe_matches_inproc_bit_for_bit(self):
        def run(mode):
            arrivals = poisson_arrivals(150.0, 20.0, seed=5)
            with DistributedServeSession(
                specs(2), arrivals, mode=mode, seed=5
            ) as session:
                return session.run(20.0)

        inproc, pipe = run("inproc"), run("pipe")
        assert inproc.summary() == pipe.summary()
        assert inproc.latencies_ms == pipe.latencies_ms

    @pytest.mark.parametrize("mode", ["pipe", "tcp"])
    def test_streaming_fleet_view_matches_capture_across_processes(self, mode):
        """The live delta view equals the capture merge with real worker
        processes on both transports, not just the inproc fast path."""
        telemetry = Telemetry()
        arrivals = poisson_arrivals(150.0, 15.0, seed=5)
        with DistributedServeSession(
            specs(2, collect_telemetry=True),
            arrivals,
            mode=mode,
            seed=5,
            telemetry=telemetry,
            telemetry_every_ticks=5,
        ) as session:
            session.run(15.0)
            live = session.refresh_fleet_view()
            assert live is not None
            live_counters = {
                n: c.value for n, c in live.metrics.counters().items()
            }
            live_hists = {
                n: (list(h.counts), h.total, h.count)
                for n, h in live.metrics.histograms().items()
            }
            session.collect_telemetry()
        assert live_counters == {
            n: c.value for n, c in telemetry.metrics.counters().items()
        }
        assert live_hists == {
            n: (list(h.counts), h.total, h.count)
            for n, h in telemetry.metrics.histograms().items()
        }


# ----------------------------------------------------------------------
# Trace stitching across the process boundary
# ----------------------------------------------------------------------
class TestTraceStitching:
    def test_worker_spans_reparent_under_edge_roots(self):
        # trace_requests on the edge; worker specs record their side.
        telemetry = Telemetry()
        arrivals = poisson_arrivals(60.0, 20.0, seed=2)
        with DistributedServeSession(
            specs(2, trace_requests=True, collect_telemetry=True),
            arrivals,
            mode="inproc",
            trace_requests=True,
            telemetry=telemetry,
        ) as session:
            session.run(20.0)
            session.collect_telemetry()

        spans = telemetry.tracer.records()
        edge_roots = {
            s["id"]: s for s in spans if s["name"] == "edge.request"
        }
        worker_roots = [s for s in spans if s["name"] == "request"]
        assert edge_roots and worker_roots
        for span in worker_roots:
            # Every worker-side request tree hangs off the edge span that
            # minted its trace id, one level deeper.
            assert span["parent"] in edge_roots
            parent = edge_roots[span["parent"]]
            assert parent["attrs"]["trace_id"] == span["attrs"]["trace_id"]
            assert span["depth"] == parent["depth"] + 1
            assert span["attrs"]["worker"] in (0, 1)
        # Child spans below the worker roots moved with their parents.
        children = [
            s
            for s in spans
            if s["parent"] is not None
            and s["parent"] not in edge_roots
            and s["name"] != "edge.request"
        ]
        ids = {s["id"] for s in spans}
        assert all(s["parent"] in ids for s in children)

    def test_collect_telemetry_is_idempotent(self):
        telemetry = Telemetry()
        arrivals = poisson_arrivals(60.0, 10.0, seed=2)
        with DistributedServeSession(
            specs(1, collect_telemetry=True),
            arrivals,
            mode="inproc",
            telemetry=telemetry,
        ) as session:
            session.run(10.0)
            session.collect_telemetry()
            before = len(telemetry.tracer.records())
            session.collect_telemetry()  # second call must not re-merge
            assert len(telemetry.tracer.records()) == before


# ----------------------------------------------------------------------
# Streaming telemetry deltas: the live fleet view
# ----------------------------------------------------------------------
class TestStreamingTelemetry:
    def _metric_state(self, telemetry):
        metrics = telemetry.metrics
        return (
            {n: c.value for n, c in metrics.counters().items()},
            {n: g.value for n, g in metrics.gauges().items()},
            {
                n: (list(h.counts), h.total, h.count)
                for n, h in metrics.histograms().items()
            },
        )

    def _streaming_session(self, telemetry, mode="inproc", duration=20.0):
        arrivals = poisson_arrivals(150.0, duration, seed=3)
        return DistributedServeSession(
            specs(2, collect_telemetry=True),
            arrivals,
            mode=mode,
            seed=3,
            telemetry=telemetry,
            telemetry_every_ticks=5,
        )

    def test_streaming_requires_edge_telemetry(self):
        with pytest.raises(ConfigurationError, match="telemetry"):
            make_session(telemetry_every_ticks=5)
        with pytest.raises(ConfigurationError, match=">= 0"):
            make_session(telemetry=Telemetry(), telemetry_every_ticks=-1)

    def test_live_fleet_view_matches_capture_merge(self):
        """The delta-built fleet view equals the end-of-run capture
        merge exactly — same counter floats, same histogram counts."""
        telemetry = Telemetry()
        with self._streaming_session(telemetry) as session:
            session.run(20.0)
            live = session.refresh_fleet_view()
            assert live is not None
            assert all(
                v.deltas_applied > 0 for v in session._delta_views.values()
            )
            live_state = self._metric_state(live)
            session.collect_telemetry()
        assert live_state == self._metric_state(telemetry)
        # Counters merged unlabelled, gauges split per worker.
        assert telemetry.metrics.counter("serve.admitted").value > 0
        gauges = telemetry.metrics.gauges()
        assert 'serve.machines{worker="0"}' in gauges
        assert 'serve.machines{worker="1"}' in gauges

    def test_streaming_capture_equals_nonstreaming_capture(self):
        """Delta streaming must not change what the run reports: the
        final merged registry matches a capture-only run of the same
        workload, and so does the report."""

        def once(every):
            telemetry = Telemetry()
            arrivals = poisson_arrivals(150.0, 20.0, seed=3)
            with DistributedServeSession(
                specs(2, collect_telemetry=True),
                arrivals,
                mode="inproc",
                seed=3,
                telemetry=telemetry,
                telemetry_every_ticks=every,
            ) as session:
                report = session.run(20.0)
                session.collect_telemetry()
            return report, self._metric_state(telemetry)

        streamed_report, streamed = once(5)
        captured_report, captured = once(0)
        assert streamed_report.summary() == captured_report.summary()
        assert streamed == captured

    def test_fleet_view_mid_run_is_partial_but_consistent(self):
        telemetry = Telemetry()
        with self._streaming_session(telemetry) as session:
            session.run(20.0)
            view = session.fleet_view
            # The dispatch loop refreshed the view on the delta cadence.
            assert view is not None
            admitted = view.metrics.counter("serve.admitted").value
            assert admitted > 0
            session.collect_telemetry()
            # Final merge supersedes the live view.
            assert session.fleet_view is None
        assert telemetry.metrics.counter("serve.admitted").value >= admitted

    def test_timeseries_store_samples_fleet_view(self):
        from repro.telemetry import TimeSeriesStore

        telemetry = Telemetry()
        store = TimeSeriesStore()
        arrivals = poisson_arrivals(150.0, 20.0, seed=3)
        with DistributedServeSession(
            specs(2, collect_telemetry=True),
            arrivals,
            mode="inproc",
            seed=3,
            telemetry=telemetry,
            telemetry_every_ticks=5,
            timeseries=store,
        ) as session:
            session.run(20.0)
            session.collect_telemetry()
        assert store.samples_taken > 0
        assert store.query("serve.admitted")
        # Worker-labelled gauges reach the store via the fleet view.
        assert any("worker=" in name for name in store.names())

    def test_timeseries_requires_edge_telemetry(self):
        from repro.telemetry import TimeSeriesStore

        with pytest.raises(ConfigurationError, match="telemetry"):
            make_session(timeseries=TimeSeriesStore())


# ----------------------------------------------------------------------
# Distributed checkpoint/restore: bit-identical continuation
# ----------------------------------------------------------------------
class TestDistributedCheckpoint:
    def _kwargs(self):
        return dict(
            mode="inproc",
            seed=7,
            breaker=BreakerConfig(miss_threshold=2, open_seconds=10.0),
            brownout=BrownoutConfig(),
            low_priority_fraction=0.2,
            slo=SLOConfig(),
        )

    def test_restore_continues_bit_identically(self, tmp_path):
        arrivals = poisson_arrivals(150.0, 60.0, seed=7)
        path = str(tmp_path / "dist.ckpt")

        with DistributedServeSession(
            specs(2), arrivals, **self._kwargs()
        ) as session:
            session.run(30.0)
            session.write_checkpoint(path)
            resumed_from = session.now
            baseline = session.run(30.0)

        with DistributedServeSession.resume(
            specs(2), arrivals, path, **self._kwargs()
        ) as restored:
            assert restored.now == resumed_from
            report = restored.run(30.0)

        assert report.summary() == baseline.summary()
        assert report.latencies_ms == baseline.latencies_ms
        assert report.conserved

    def test_periodic_checkpoints_fire(self, tmp_path):
        path = str(tmp_path / "auto.ckpt")
        with make_session(
            rate=100.0,
            checkpoint=CheckpointConfig(path=path, every_s=10.0),
        ) as session:
            session.run(30.0)
            assert session.checkpoints_written >= 2
        assert os.path.exists(path)
        with open(path) as f:
            doc = json.load(f)
        assert doc["format"] == "repro-distributed-checkpoint/1"

    def test_resume_rejects_worker_count_mismatch(self, tmp_path):
        arrivals = poisson_arrivals(100.0, 20.0, seed=1)
        path = str(tmp_path / "two.ckpt")
        with DistributedServeSession(
            specs(2), arrivals, mode="inproc"
        ) as session:
            session.run(10.0)
            session.write_checkpoint(path)
        with pytest.raises(CheckpointError, match="workers"):
            DistributedServeSession.resume(
                specs(3), arrivals, path, mode="inproc"
            )


# ----------------------------------------------------------------------
# Soak harness and gates
# ----------------------------------------------------------------------
class TestSoak:
    def test_soak_passes_and_reports(self, tmp_path):
        config = SoakConfig(
            workers=2,
            rate_per_s=150.0,
            duration_s=40.0,
            mode="inproc",
            seed=4,
        )
        report = run_soak(config)
        assert report.passed and not report.gate()
        assert report.offered > 0
        assert "exact" in report.conservation_line
        path = str(tmp_path / "soak.json")
        report.write(path)
        with open(path) as f:
            doc = json.load(f)
        assert doc["format"] == "repro-soak-report/1"
        assert doc["passed"] is True and doc["failures"] == []

    def test_gates_catch_breaches(self):
        config = SoakConfig(
            workers=1,
            rate_per_s=600.0,  # way past one worker's saturation
            duration_s=30.0,
            mode="inproc",
            max_shed_rate=0.0,  # any shed at all breaches
            max_p99_ms=0.001,
        )
        report = run_soak(config)
        assert not report.passed
        assert any("shed" in g or "p99" in g for g in report.gate())
        assert "GATE FAIL" in report.format_report()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SoakConfig(workers=0)
        with pytest.raises(ConfigurationError):
            SoakConfig(duration_s=-1.0)

    def test_per_worker_seeds_differ(self):
        config = SoakConfig(workers=3, seed=10)
        assert [s.seed for s in config.worker_specs()] == [10, 11, 12]

    def test_build_session_wires_config(self):
        config = SoakConfig(
            workers=2,
            mode="inproc",
            slo=True,
            telemetry=True,
            low_priority_fraction=0.1,
            duration_s=20.0,
        )
        telemetry = Telemetry()
        session = build_soak_session(config, telemetry=telemetry)
        try:
            assert session.slo_monitor is not None
            assert session.brownout is not None
            assert session.telemetry is telemetry
            assert len(session.workers) == 2
        finally:
            session.close()

    def test_build_session_wires_streaming_and_timeseries(self):
        config = SoakConfig(
            workers=2,
            mode="inproc",
            duration_s=20.0,
            telemetry_every_ticks=5,
            timeseries=True,
        )
        assert all(s.collect_telemetry for s in config.worker_specs())
        session = build_soak_session(config)
        try:
            assert session.telemetry is not None
            assert session.telemetry_every_ticks == 5
            assert session.timeseries is not None
        finally:
            session.close()

    def test_streaming_soak_config_validation(self):
        with pytest.raises(ConfigurationError):
            SoakConfig(telemetry_every_ticks=-1)
