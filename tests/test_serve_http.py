"""Tests for the asyncio HTTP transport (`repro serve` / `repro loadgen`).

Each test boots a real :class:`ServeApp` on a free localhost port inside
``asyncio.run`` and talks to it over actual sockets; wall-clock runs use
aggressive speedups so the whole module stays fast.
"""

import asyncio
import json

import pytest

from repro.engine.simulator import EngineConfig
from repro.serve import ServerEngine, poisson_arrivals
from repro.serve.admission import AdmissionConfig
from repro.serve.http import ServeApp, run_loadgen_client
from repro.telemetry import Telemetry


def make_engine(**kwargs):
    defaults = dict(
        engine_config=EngineConfig(max_nodes=4, saturation_rate_per_node=60.0),
        initial_nodes=2,
        telemetry=Telemetry(),
    )
    defaults.update(kwargs)
    return ServerEngine(**defaults)


async def http_request(port, method="GET", path="/", host="127.0.0.1", headers=None):
    reader, writer = await asyncio.open_connection(host, port)
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n{extra}"
        "Content-Length: 0\r\nConnection: close\r\n\r\n".encode("ascii")
    )
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.read()
    writer.close()
    await writer.wait_closed()
    return status, headers, body


async def start_app(app):
    """Run the app in a background task; returns once the port is bound.

    Binding goes through :meth:`ServeApp._bind`, which retries transient
    ``EADDRINUSE``/``EADDRNOTAVAIL`` with backoff — the port-allocation
    flake class that used to kill parallel CI runs of this module.
    """
    ready = asyncio.Event()
    task = asyncio.create_task(app.run(on_ready=lambda _: ready.set()))
    await asyncio.wait_for(ready.wait(), timeout=10)
    return task


class TestBindRetry:
    def test_run_retries_transient_bind_failure(self):
        """A port in TIME_WAIT (EADDRINUSE) is retried, then succeeds."""
        import errno

        async def scenario():
            app = ServeApp(make_engine(), virtual=True, duration_s=5.0)
            real_start = asyncio.start_server
            attempts = {"n": 0}

            async def flaky_start(*args, **kwargs):
                attempts["n"] += 1
                if attempts["n"] < 3:
                    raise OSError(errno.EADDRINUSE, "address in use")
                return await real_start(*args, **kwargs)

            asyncio.start_server = flaky_start
            try:
                server = await app._bind(retries=5, delay_s=0.001)
            finally:
                asyncio.start_server = real_start
            assert attempts["n"] == 3
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_bind_gives_up_after_retries(self):
        import errno

        from repro.errors import ConfigurationError

        async def scenario():
            app = ServeApp(make_engine(), virtual=True, duration_s=5.0)
            real_start = asyncio.start_server

            async def always_busy(*args, **kwargs):
                raise OSError(errno.EADDRINUSE, "address in use")

            asyncio.start_server = always_busy
            try:
                with pytest.raises(ConfigurationError, match="could not bind"):
                    await app._bind(retries=2, delay_s=0.001)
            finally:
                asyncio.start_server = real_start

        asyncio.run(scenario())

    def test_real_misconfiguration_raises_immediately(self):
        import errno

        async def scenario():
            app = ServeApp(make_engine(), virtual=True, duration_s=5.0)
            real_start = asyncio.start_server
            attempts = {"n": 0}

            async def denied(*args, **kwargs):
                attempts["n"] += 1
                raise OSError(errno.EACCES, "permission denied")

            asyncio.start_server = denied
            try:
                with pytest.raises(OSError):
                    await app._bind(retries=5, delay_s=0.001)
            finally:
                asyncio.start_server = real_start
            assert attempts["n"] == 1, "EACCES is not the retry class"

        asyncio.run(scenario())


class TestAdminEndpoints:
    def test_healthz_and_metrics(self):
        async def scenario():
            app = ServeApp(
                make_engine(), virtual=True, duration_s=120.0, linger_s=30.0
            )
            task = await start_app(app)
            # The virtual run finishes almost immediately; then it lingers.
            for _ in range(200):
                status, _, body = await http_request(app.port, path="/healthz")
                assert status == 200
                health = json.loads(body)
                if health["run_complete"]:
                    break
                await asyncio.sleep(0.05)
            assert health["run_complete"] and health["ticks"] == 120
            assert health["status"] == "ok"

            status, headers, body = await http_request(app.port, path="/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            text = body.decode()
            assert "repro_serve_ticks_total 120" in text
            assert "# TYPE repro_serve_machines gauge" in text

            status, _, _ = await http_request(app.port, path="/unknown")
            assert status == 404

            status, _, _ = await http_request(
                app.port, method="POST", path="/shutdown"
            )
            assert status == 200
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())

    def test_txn_round_trip_and_shed(self):
        async def scenario():
            # Tight admission: the node queue estimate exceeds the limit
            # as soon as a couple of requests stack up in one tick.
            engine = make_engine(
                initial_nodes=1,
                admission=AdmissionConfig(queue_limit_seconds=0.01),
            )
            app = ServeApp(engine, speedup=20.0, duration_s=600.0, linger_s=30.0)
            task = await start_app(app)

            results = await asyncio.gather(
                *(http_request(app.port, method="POST", path="/txn")
                  for _ in range(8))
            )
            statuses = sorted(status for status, _, _ in results)
            assert statuses[0] == 200, "an empty server must accept work"
            assert statuses[-1] == 503, "stacked submissions must shed"
            for status, headers, body in results:
                payload = json.loads(body)
                if status == 200:
                    assert payload["status"] == "ok"
                    assert payload["latency_ms"] > 0
                else:
                    assert payload["status"] == "shed"
                    assert int(headers["retry-after"]) >= 1

            await http_request(app.port, method="POST", path="/shutdown")
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())

    def test_txn_after_run_completes_is_draining(self):
        async def scenario():
            app = ServeApp(
                make_engine(), virtual=True, duration_s=30.0, linger_s=30.0
            )
            task = await start_app(app)
            for _ in range(200):
                _, _, body = await http_request(app.port, path="/healthz")
                if json.loads(body)["run_complete"]:
                    break
                await asyncio.sleep(0.05)
            status, headers, body = await http_request(
                app.port, method="POST", path="/txn"
            )
            assert status == 503
            assert json.loads(body)["error"] == "server is draining"
            assert headers["retry-after"] == "1"
            await http_request(app.port, method="POST", path="/shutdown")
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())


class TestObservabilityEndpoints:
    def _observable_app(self, **kwargs):
        from repro.telemetry import PerfRecorder, TimeSeriesStore

        defaults = dict(
            virtual=True,
            duration_s=60.0,
            linger_s=30.0,
            arrivals=poisson_arrivals(30.0, 60.0, seed=4),
            timeseries=TimeSeriesStore(),
            perf=PerfRecorder(),
        )
        defaults.update(kwargs)
        return ServeApp(make_engine(), **defaults)

    async def _wait_complete(self, app):
        for _ in range(200):
            _, _, body = await http_request(app.port, path="/healthz")
            health = json.loads(body)
            if health["run_complete"]:
                return health
            await asyncio.sleep(0.05)
        raise AssertionError("virtual run never completed")

    def test_timeseries_endpoint(self):
        async def scenario():
            app = self._observable_app()
            task = await start_app(app)
            await self._wait_complete(app)

            # Index: series names plus the rollup windows.
            status, headers, body = await http_request(
                app.port, path="/timeseries"
            )
            assert status == 200
            assert headers["content-type"].startswith("application/json")
            summary = json.loads(body)
            assert "serve.admitted" in summary["series"]
            assert summary["windows"] == [1, 10, 100]
            assert summary["samples"] == 60

            # Named series at a rollup tier.
            status, _, body = await http_request(
                app.port, path="/timeseries?name=serve.machines&window=10"
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["name"] == "serve.machines"
            assert payload["window"] == 10
            assert len(payload["points"]) == 6
            assert all(
                set(p) == {"t", "min", "max", "mean", "last"}
                for p in payload["points"]
            )

            # Bad window values are 400s, not stack traces.
            for query in ("name=serve.machines&window=7",
                          "name=serve.machines&window=soon"):
                status, _, body = await http_request(
                    app.port, path=f"/timeseries?{query}"
                )
                assert status == 400
                assert "error" in json.loads(body)

            # Unknown series: valid query, empty data.
            status, _, body = await http_request(
                app.port, path="/timeseries?name=no.such.series"
            )
            assert status == 200
            assert json.loads(body)["points"] == []

            await http_request(app.port, method="POST", path="/shutdown")
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())

    def test_timeseries_404_when_store_disabled(self):
        async def scenario():
            app = ServeApp(
                make_engine(), virtual=True, duration_s=10.0, linger_s=30.0
            )
            task = await start_app(app)
            status, _, body = await http_request(app.port, path="/timeseries")
            assert status == 404
            assert "timeseries" in json.loads(body)["error"]
            await http_request(app.port, method="POST", path="/shutdown")
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())

    def test_dashboard_serves_html(self):
        async def scenario():
            app = self._observable_app()
            task = await start_app(app)
            status, headers, body = await http_request(app.port, path="/dashboard")
            assert status == 200
            assert headers["content-type"].startswith("text/html")
            text = body.decode()
            assert "<!doctype html>" in text.lower()
            for endpoint in ("/healthz", "/metrics", "/timeseries"):
                assert endpoint in text, f"dashboard must poll {endpoint}"
            await http_request(app.port, method="POST", path="/shutdown")
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())

    def test_metrics_include_perf_families(self):
        import re

        from repro.telemetry import PerfRecorder, perf_session

        async def scenario():
            perf = PerfRecorder()
            # Instrumentation sites resolve the recorder through the
            # scoped default, exactly like `repro serve --perf` does.
            with perf_session(perf):
                app = self._observable_app(perf=perf)
                task = await start_app(app)
                await self._wait_complete(app)
                status, _, body = await http_request(app.port, path="/metrics")
                assert status == 200
                text = body.decode()
                assert "# TYPE repro_perf_engine_tick_ms histogram" in text
                match = re.search(r"repro_perf_engine_tick_ms_count (\d+)", text)
                assert match and int(match.group(1)) >= 60
                assert "repro_perf_overhead_ms" in text
                await http_request(app.port, method="POST", path="/shutdown")
                await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())

    def test_healthz_reports_machine_hours_and_cost(self):
        async def scenario():
            app = self._observable_app(cost_per_machine_hour=1.5)
            task = await start_app(app)
            health = await self._wait_complete(app)
            # 2 machines for 60 simulated seconds = 1/30 machine-hour
            # (reported rounded to 6 decimal places).
            assert health["machine_hours"] == pytest.approx(
                2 * 60 / 3600.0, abs=1e-6
            )
            assert health["cost_dollars"] == pytest.approx(
                1.5 * health["machine_hours"], abs=1e-4
            )
            await http_request(app.port, method="POST", path="/shutdown")
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())


class TestTenantHeader:
    def _tenant_engine(self):
        from repro.tenancy import TenantAdmission, TenantRegistry, TenantSpec

        registry = TenantRegistry(
            tenants=[
                TenantSpec(name="checkout", profile="poisson:rate=5"),
                TenantSpec(name="search", profile="poisson:rate=5"),
            ]
        )
        return make_engine(tenancy=TenantAdmission(registry))

    def test_known_tenant_is_tagged_on_the_outcome(self):
        async def scenario():
            app = ServeApp(
                self._tenant_engine(),
                speedup=20.0,
                duration_s=600.0,
                linger_s=30.0,
            )
            task = await start_app(app)
            status, _, body = await http_request(
                app.port,
                method="POST",
                path="/txn",
                headers={"X-Tenant": "checkout"},
            )
            assert status == 200
            assert json.loads(body)["tenant"] == "checkout"
            await http_request(app.port, method="POST", path="/shutdown")
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())

    def test_unknown_tenant_is_403_and_counted(self):
        async def scenario():
            engine = self._tenant_engine()
            app = ServeApp(
                engine, speedup=20.0, duration_s=600.0, linger_s=30.0
            )
            task = await start_app(app)
            status, _, body = await http_request(
                app.port,
                method="POST",
                path="/txn",
                headers={"X-Tenant": "mallory"},
            )
            assert status == 403
            payload = json.loads(body)
            assert "mallory" in payload["error"]
            assert payload["tenants"] == ["checkout", "search"]
            counter = engine.telemetry.metrics.counter("serve.tenant.rejected")
            assert counter.value == 1.0
            # The request never reached admission.
            assert engine.admission.total == 0
            await http_request(app.port, method="POST", path="/shutdown")
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())

    def test_tenant_header_without_tenancy_is_403(self):
        async def scenario():
            app = ServeApp(
                make_engine(), speedup=20.0, duration_s=600.0, linger_s=30.0
            )
            task = await start_app(app)
            status, _, body = await http_request(
                app.port,
                method="POST",
                path="/txn",
                headers={"X-Tenant": "checkout"},
            )
            assert status == 403
            assert json.loads(body)["tenants"] == []
            await http_request(app.port, method="POST", path="/shutdown")
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())

    def test_no_header_serves_default_tenant(self):
        async def scenario():
            app = ServeApp(
                self._tenant_engine(),
                speedup=20.0,
                duration_s=600.0,
                linger_s=30.0,
            )
            task = await start_app(app)
            status, _, body = await http_request(
                app.port, method="POST", path="/txn"
            )
            assert status == 200
            # Untagged traffic lands on the first registered tenant.
            assert json.loads(body)["tenant"] == "checkout"
            await http_request(app.port, method="POST", path="/shutdown")
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())


class TestEmbeddedLoadgen:
    def test_virtual_run_reports_offered_traffic(self):
        async def scenario():
            arrivals = poisson_arrivals(30.0, 60.0, seed=4)
            app = ServeApp(
                make_engine(),
                virtual=True,
                duration_s=60.0,
                arrivals=arrivals,
            )
            task = await start_app(app)
            await asyncio.wait_for(task, timeout=30)
            report = app.loadgen_report
            assert report.offered == len(arrivals)
            assert report.accepted == report.offered
            assert report.duration_s == pytest.approx(60.0)
            assert report.latency_percentile(50.0) > 0

        asyncio.run(scenario())


class TestGracefulDrain:
    def test_shutdown_drains_in_flight_and_rejects_new_work(self):
        async def scenario():
            # Slow wall-clock ticks: a submitted txn stays in flight
            # until the drain's final tick resolves it.
            app = ServeApp(
                make_engine(), speedup=0.25, duration_s=600.0, linger_s=30.0
            )
            task = await start_app(app)

            in_flight = asyncio.create_task(
                http_request(app.port, method="POST", path="/txn")
            )
            for _ in range(100):
                if app.engine.pending_requests:
                    break
                await asyncio.sleep(0.02)
            assert app.engine.pending_requests == 1

            status, _, body = await http_request(
                app.port, method="POST", path="/shutdown"
            )
            assert status == 200
            assert json.loads(body)["draining"] is True

            # The in-flight transaction is resolved by the drain tick,
            # not dropped — and the client is not left hanging.
            status, _, body = await asyncio.wait_for(in_flight, timeout=10)
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            await asyncio.wait_for(task, timeout=10)
            assert app.engine.pending_requests == 0

        asyncio.run(scenario())

    def test_new_txn_during_drain_gets_503_retry_after(self):
        async def scenario():
            app = ServeApp(
                make_engine(), speedup=0.25, duration_s=600.0, linger_s=30.0
            )
            task = await start_app(app)
            await http_request(app.port, method="POST", path="/shutdown")
            # The listener keeps answering while the drain completes;
            # new work is refused fast with a retry hint.
            try:
                status, headers, body = await http_request(
                    app.port, method="POST", path="/txn"
                )
            except (ConnectionError, OSError):
                pass  # drain already finished and closed the listener
            else:
                assert status == 503
                assert json.loads(body)["error"] == "server is draining"
                assert headers["retry-after"] == "1"
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())

    def test_drain_accounts_for_every_request(self):
        async def scenario():
            engine = make_engine()
            app = ServeApp(engine, speedup=0.5, duration_s=600.0, linger_s=30.0)
            task = await start_app(app)
            submitted = [
                asyncio.create_task(
                    http_request(app.port, method="POST", path="/txn")
                )
                for _ in range(5)
            ]
            for _ in range(100):
                if engine.admission.total >= 5:
                    break
                await asyncio.sleep(0.02)
            await http_request(app.port, method="POST", path="/shutdown")
            results = await asyncio.wait_for(
                asyncio.gather(*submitted), timeout=10
            )
            await asyncio.wait_for(task, timeout=10)
            # Conservation across the drain: every submitted request got
            # a terminal answer (served or shed), none vanished.
            statuses = sorted(status for status, _, _ in results)
            assert all(status in (200, 503) for status in statuses)
            assert engine.admission.total == 5
            assert engine.completed + engine.admission.rejected == 5
            assert engine.pending_requests == 0

        asyncio.run(scenario())


class TestLoadgenClient:
    def test_open_loop_client_round_trip(self):
        async def scenario():
            app = ServeApp(
                make_engine(), speedup=20.0, duration_s=600.0, linger_s=30.0
            )
            task = await start_app(app)
            arrivals = poisson_arrivals(8.0, 10.0, seed=6)
            report = await run_loadgen_client(
                f"http://127.0.0.1:{app.port}", arrivals, speedup=20.0
            )
            assert report.offered == len(arrivals)
            assert report.accepted > 0
            assert report.latency_percentile(50.0) > 0
            await http_request(app.port, method="POST", path="/shutdown")
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(scenario())

    def test_client_survives_unreachable_server(self):
        async def scenario():
            arrivals = poisson_arrivals(5.0, 1.0, seed=1)
            report = await run_loadgen_client(
                "http://127.0.0.1:1", arrivals, speedup=100.0
            )
            assert report.offered == len(arrivals)
            assert report.accepted == 0
            assert report.rejected == report.offered

        asyncio.run(scenario())
