"""Checkpoint/restore of the live serving state.

The headline property: a serving session resumed from a digest-verified
snapshot continues **bit-identically** to a run that was never
interrupted — same latency samples, same counters, same control-loop
decisions.  Everything runs on the virtual clock.
"""

import json

import pytest

from repro.cli import main
from repro.core.params import SystemParameters
from repro.engine.simulator import EngineConfig
from repro.errors import CheckpointError, ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, NodeCrash
from repro.prediction.online import OnlinePredictor
from repro.prediction.spar import SPARPredictor
from repro.serve import (
    AdmissionConfig,
    CheckpointConfig,
    OnlineControlLoop,
    RetryConfig,
    ServeSession,
    ServerEngine,
    poisson_arrivals,
    read_checkpoint,
    write_checkpoint,
)
from repro.serve.checkpoint import capture_engine, ensure_quiescent, restore_engine

SAT = 12.0


def small_config(**kwargs):
    defaults = dict(max_nodes=4, saturation_rate_per_node=SAT, db_size_kb=5 * 1024)
    defaults.update(kwargs)
    return EngineConfig(**defaults)


def small_controller():
    spar = SPARPredictor(period=12, n_periods=2, n_recent=2, max_horizon=4)
    return OnlineControlLoop(
        SystemParameters.from_saturation(SAT, interval_seconds=60.0, d_seconds=120.0),
        OnlinePredictor(spar, refit_every=12),
        measurement_slot_seconds=60.0,
        max_machines=4,
    )


def build_engine(*, controller=True, **kwargs):
    defaults = dict(
        engine_config=small_config(),
        initial_nodes=2,
        slot_seconds=60.0,
        admission=AdmissionConfig(queue_limit_seconds=8.0),
        controller=small_controller() if controller else None,
    )
    defaults.update(kwargs)
    return ServerEngine(**defaults)


# ----------------------------------------------------------------------
# File format
# ----------------------------------------------------------------------
class TestCheckpointFile:
    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "snap.ckpt")
        state = {"clock_now": 12.5, "engine": {"x": [1, 2, 3]}}
        digest = write_checkpoint(path, state)
        assert len(digest) == 64
        assert read_checkpoint(path) == state

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            read_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("definitely not json{")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            read_checkpoint(str(path))

    def test_unknown_format(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text(json.dumps({"format": "bogus/9", "state": {}}))
        with pytest.raises(CheckpointError, match="unknown format"):
            read_checkpoint(str(path))

    def test_tampered_state_fails_digest(self, tmp_path):
        path = str(tmp_path / "snap.ckpt")
        write_checkpoint(path, {"counter": 1})
        document = json.loads(open(path).read())
        document["state"]["counter"] = 2  # the hand-edit
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(CheckpointError, match="digest"):
            read_checkpoint(path)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig("")
        with pytest.raises(ConfigurationError):
            CheckpointConfig("x.ckpt", every_s=0.0)


# ----------------------------------------------------------------------
# Quiescence and restore preconditions
# ----------------------------------------------------------------------
class TestQuiescence:
    def test_pending_requests_block_checkpoint(self):
        engine = build_engine(controller=False)
        engine.submit(None, now=0.0)
        with pytest.raises(CheckpointError, match="admitted"):
            ensure_quiescent(engine)
        engine.tick()
        ensure_quiescent(engine)  # drained: fine now

    def test_unresolved_faults_block_checkpoint(self):
        plan = FaultPlan([NodeCrash(at_seconds=50.0, node_id=1)])
        engine = build_engine(controller=False, fault_injector=FaultInjector(plan))
        with pytest.raises(CheckpointError, match="fault"):
            ensure_quiescent(engine)

    def test_restore_rejects_config_mismatch(self):
        state = capture_engine(build_engine(controller=False))
        other = build_engine(
            controller=False, engine_config=small_config(max_nodes=3)
        )
        with pytest.raises(CheckpointError, match="does not match"):
            restore_engine(other, state)

    def test_restore_rejects_already_served_engine(self):
        state = capture_engine(build_engine(controller=False))
        target = build_engine(controller=False)
        target.tick()
        with pytest.raises(CheckpointError, match="already served"):
            restore_engine(target, state)

    def test_resume_requires_matching_retry_setting(self, tmp_path):
        path = str(tmp_path / "snap.ckpt")
        arrivals = poisson_arrivals(4.0, 30.0, seed=1)
        session = ServeSession(
            build_engine(controller=False), arrivals, retry=RetryConfig()
        )
        session.run(40.0)
        session.write_checkpoint(path)
        with pytest.raises(CheckpointError, match="retries are\n?\\s*disabled"):
            ServeSession.resume(build_engine(controller=False), arrivals, path)

    def test_resume_requires_restorable_controller(self, tmp_path):
        path = str(tmp_path / "snap.ckpt")
        arrivals = poisson_arrivals(4.0, 30.0, seed=1)
        session = ServeSession(build_engine(), arrivals)
        session.run(40.0)
        session.write_checkpoint(path)
        with pytest.raises(CheckpointError, match="controller"):
            ServeSession.resume(build_engine(controller=False), arrivals, path)


# ----------------------------------------------------------------------
# Bit-identical resume
# ----------------------------------------------------------------------
class TestBitIdenticalResume:
    ARRIVALS_KW = dict(rate_per_s=6.0, duration_s=340.0, seed=7)
    TOTAL_S = 360.0

    def run_uninterrupted(self):
        arrivals = poisson_arrivals(**self.ARRIVALS_KW)
        session = ServeSession(build_engine(), arrivals, retry=RetryConfig())
        return session.run(self.TOTAL_S)

    def test_resume_is_bit_identical(self, tmp_path):
        reference = self.run_uninterrupted()

        # Same run, but snapshotting on a cadence; "crash" after 240s by
        # discarding the session and resuming from the last snapshot.
        path = str(tmp_path / "serve.ckpt")
        arrivals = poisson_arrivals(**self.ARRIVALS_KW)
        interrupted = ServeSession(
            build_engine(),
            arrivals,
            retry=RetryConfig(),
            checkpoint=CheckpointConfig(path, every_s=120.0),
        )
        interrupted.run(240.0)
        assert interrupted.checkpoints_written >= 1

        checkpoint_t = float(read_checkpoint(path)["clock_now"])
        assert 0 < checkpoint_t <= 240.0
        resumed = ServeSession.resume(
            build_engine(), arrivals, path, retry=RetryConfig()
        )
        assert resumed.clock.now == checkpoint_t
        report = resumed.run(self.TOTAL_S - checkpoint_t)

        # Byte-for-byte: every latency sample, every counter.
        assert report.latencies_ms == reference.latencies_ms
        assert report.summary() == reference.summary()
        assert report.duration_s == reference.duration_s

    def test_manual_checkpoint_roundtrips_controller(self, tmp_path):
        # Snapshot after the control loop has observed slots and refit;
        # the resumed loop continues from the same fit, so its decisions
        # (and therefore cluster topology) match the reference exactly.
        path = str(tmp_path / "serve.ckpt")
        arrivals = poisson_arrivals(**self.ARRIVALS_KW)
        first = ServeSession(build_engine(), arrivals, retry=RetryConfig())
        first.run(180.0)
        first.write_checkpoint(path)

        resumed = ServeSession.resume(
            build_engine(), arrivals, path, retry=RetryConfig()
        )
        assert resumed.engine.controller.intervals_observed == (
            first.engine.controller.intervals_observed
        )
        report = resumed.run(self.TOTAL_S - 180.0)
        reference = self.run_uninterrupted()
        assert report.latencies_ms == reference.latencies_ms
        assert report.summary() == reference.summary()


# ----------------------------------------------------------------------
# CLI --checkpoint / --restore
# ----------------------------------------------------------------------
class TestServeCheckpointCLI:
    def serve_args(self, tmp_path):
        return [
            "serve", "--no-http", "--clock", "virtual", "--duration", "300",
            "--saturation", "12", "--db-size-mb", "5", "--max-nodes", "4",
            "--interval-seconds", "60", "--queue-limit", "8",
            "--spar", "period=12,periods=2,recent=2,horizon=4",
            "--profile", "poisson:rate=6", "--seed", "3",
            "--checkpoint", str(tmp_path / "serve.ckpt"),
            "--checkpoint-every", "120",
        ]

    def test_checkpoint_then_restore(self, tmp_path, capsys):
        args = self.serve_args(tmp_path)
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "checkpoints written:" in out
        assert (tmp_path / "serve.ckpt").exists()

        assert main(args + ["--restore", str(tmp_path / "serve.ckpt")]) == 0
        out = capsys.readouterr().out
        assert "restored from" in out

    def test_restore_past_duration_exits_2(self, tmp_path, capsys):
        args = self.serve_args(tmp_path)
        assert main(args) == 0
        capsys.readouterr()
        short = [a if a != "300" else "60" for a in args]
        code = main(short + ["--restore", str(tmp_path / "serve.ckpt")])
        assert code == 2
        assert "nothing left" in capsys.readouterr().err

    def test_restore_requires_no_http(self, tmp_path, capsys):
        args = self.serve_args(tmp_path)
        assert main(args) == 0
        capsys.readouterr()
        http_args = [a for a in args if a != "--no-http"]
        code = main(http_args + ["--restore", str(tmp_path / "serve.ckpt")])
        assert code == 2
        assert "--no-http" in capsys.readouterr().err
