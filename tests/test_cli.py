"""Tests for the experiment CLI and shared report helpers."""

import json

import pytest

from repro.cli import main
from repro.experiments import registry
from repro.experiments.common import PaperComparison, comparison_table, format_table
from repro.faults.runtime import default_fault_plan
from repro.telemetry import default_telemetry
from repro.telemetry.export import read_jsonl


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "Table 2" in out
        assert "ablations" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "completed in" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "fig2", "table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Table 1" in out

    def test_save_writes_reports(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["run", "table1", "--save", str(out_dir)]) == 0
        capsys.readouterr()
        saved = out_dir / "table1.txt"
        assert saved.exists()
        assert "Table 1" in saved.read_text()

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRegistryAliases:
    def test_dashed_alias_resolves(self):
        assert registry.get("fig9-elasticity") is registry.get("fig9")

    def test_unknown_id_lists_known(self):
        with pytest.raises(KeyError, match="fig9"):
            registry.get("fig99")


class TestTelemetryFlag:
    def test_run_writes_dump_and_restores_defaults(self, tmp_path, capsys):
        assert default_telemetry() is None
        dump_path = tmp_path / "out.jsonl"
        assert main(["run", "table1", "--telemetry", str(dump_path)]) == 0
        out = capsys.readouterr().out
        assert f"-> {dump_path}" in out
        # Scoped session: the process-wide defaults are back to None.
        assert default_telemetry() is None
        assert default_fault_plan() is None
        dump = read_jsonl(dump_path)
        assert dump.meta["experiment"] == "table1"
        assert dump.spans_named("experiment")
        assert dump.counters["experiments.runs"] == 1.0

    def test_report_round_trip(self, tmp_path, capsys):
        dump_path = tmp_path / "out.jsonl"
        assert main(["run", "table1", "--telemetry", str(dump_path)]) == 0
        capsys.readouterr()
        assert main(["report", str(dump_path)]) == 0
        out = capsys.readouterr().out
        assert "Run overview" in out
        assert "SLA violations" in out

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such telemetry dump" in capsys.readouterr().err


class TestBenchSubcommand:
    def _run_quick(self, extra, capsys):
        code = main(
            ["bench", "--quick", "--only", "schedule_construction"] + extra
        )
        return code, capsys.readouterr().out

    def test_quick_writes_output(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        code, out = self._run_quick(["--output", str(out_path)], capsys)
        assert code == 0
        report = json.loads(out_path.read_text())
        assert "schedule_construction" in report["kernels"]
        # Sample counts are recorded per kernel, never file-wide.
        assert report["kernels"]["schedule_construction"]["repeats"] == 1
        assert "repeats" not in report

    def test_compare_passes_within_tolerance(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(
            {"kernels": {"schedule_construction": {"median_ns": 10**12}}}
        ))
        code, out = self._run_quick(["--compare", str(baseline)], capsys)
        assert code == 0
        assert "all kernels within tolerance" in out

    def test_compare_tolerates_sub_noise_floor_blowup(self, tmp_path, capsys):
        # schedule_construction runs in ~0.1 ms: even a huge ratio vs a
        # 1 ns baseline stays under the absolute noise floor and must
        # not fail the gate.
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(
            {"kernels": {"schedule_construction": {"median_ns": 1}}}
        ))
        code, out = self._run_quick(["--compare", str(baseline)], capsys)
        assert code == 0
        assert "ok (within noise floor)" in out

    def test_compare_fails_on_regression(self, tmp_path, capsys):
        from repro.bench import compare_to_baseline

        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(
            {"kernels": {"some_kernel": {"median_ns": 10**7, "repeats": 3}}}
        ))
        results = {
            "some_kernel": {
                "median_ns": 10**8,
                "samples_ns": [10**8],
                "repeats": 1,
            }
        }
        code = compare_to_baseline(results, baseline, tolerance=1.5)
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_trend_renders_across_baselines(self, tmp_path, capsys):
        for date, median in (("2026-01-01", 10**7), ("2026-01-02", 2 * 10**7)):
            (tmp_path / f"BENCH_{date}.json").write_text(json.dumps({
                "date": date,
                "kernels": {
                    "schedule_construction": {"median_ns": median},
                    "fresh_kernel" if date == "2026-01-02" else "old_kernel": {
                        "median_ns": 5 * 10**6
                    },
                },
            }))
        code = main(["bench", "--trend", "--output-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2026-01-01" in out and "2026-01-02" in out
        # schedule_construction doubled: flagged as slower.
        line = next(ln for ln in out.splitlines() if ln.startswith("schedule_construction"))
        assert "+100.0% +" in line
        # fresh_kernel has one point: no delta to report.
        fresh = next(ln for ln in out.splitlines() if ln.startswith("fresh_kernel"))
        assert "new" in fresh

    def test_trend_with_no_baselines(self, tmp_path, capsys):
        code = main(["bench", "--trend", "--output-dir", str(tmp_path)])
        assert code == 0
        assert "no BENCH_" in capsys.readouterr().out

    def test_overhead_gate_logic(self, capsys):
        from repro.bench import check_telemetry_overhead

        def results(base_ms, tel_ms):
            return {
                "serve_session": {"median_ns": int(base_ms * 1e6)},
                "serve_session_telemetry": {"median_ns": int(tel_ms * 1e6)},
            }

        # Within budget: fine.
        assert check_telemetry_overhead(results(100.0, 120.0), budget=1.35) == 0
        assert "ok" in capsys.readouterr().out
        # Over budget and over the noise floor: gate fails.
        assert check_telemetry_overhead(results(100.0, 160.0), budget=1.35) == 1
        assert "OVER BUDGET" in capsys.readouterr().out
        # Huge ratio but tiny absolute delta: noise-floored, passes.
        assert check_telemetry_overhead(results(0.1, 1.0), budget=1.35) == 0
        capsys.readouterr()
        # Missing kernels: fail loudly rather than silently skip.
        assert check_telemetry_overhead({}, budget=1.35) == 1


class TestServeSubcommand:
    SERVE_ARGS = [
        "serve", "--no-http", "--clock", "virtual", "--duration", "300",
        "--saturation", "12", "--db-size-mb", "5", "--max-nodes", "4",
        "--interval-seconds", "60", "--queue-limit", "5",
        "--spar", "period=12,periods=2,recent=2,horizon=4",
    ]

    def test_no_http_virtual_run(self, capsys):
        code = main(self.SERVE_ARGS + ["--profile", "poisson:rate=6", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "embedded loadgen:" in out
        assert "offered" in out and "machines now:" in out
        assert "reconfigurations completed:" in out

    def test_require_moves_fails_on_idle_run(self, capsys):
        # Nearly no load: the controller never reconfigures.
        code = main(
            self.SERVE_ARGS
            + ["--profile", "poisson:rate=1", "--require-moves", "1"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "required >= 1" in captured.err

    def test_require_moves_passes_when_scaling(self, capsys):
        code = main(
            self.SERVE_ARGS
            + ["--profile", "poisson:rate=12", "--require-moves", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cold-start-reactive" in out

    def test_http_virtual_run_exits_cleanly(self, capsys):
        code = main([
            "serve", "--clock", "virtual", "--port", "0", "--duration", "120",
            "--saturation", "12", "--db-size-mb", "5", "--control", "none",
            "--profile", "poisson:rate=4", "--linger", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving on http://127.0.0.1:" in out
        assert "reconfigurations completed:" in out

    def test_profile_requires_duration(self, capsys):
        code = main(["serve", "--no-http", "--profile", "poisson:rate=5"])
        assert code == 2
        assert "--profile requires --duration" in capsys.readouterr().err

    def test_telemetry_dump_includes_serve_metrics(self, tmp_path, capsys):
        dump = tmp_path / "serve.jsonl"
        code = main(
            self.SERVE_ARGS
            + ["--profile", "poisson:rate=6", "--telemetry", str(dump)]
        )
        capsys.readouterr()
        assert code == 0
        parsed = read_jsonl(dump)
        assert parsed.counters["serve.ticks"] == 300
        assert parsed.counters["serve.admitted"] > 0

    def test_timeseries_dump_and_perf_report(self, tmp_path, capsys):
        dump = tmp_path / "ts.json"
        code = main(
            self.SERVE_ARGS
            + [
                "--profile", "poisson:rate=6",
                "--timeseries", str(dump),
                "--perf",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(dump.read_text())
        assert doc["format"] == "repro-timeseries/1"
        assert doc["samples"] == 300
        assert "serve.machines" in doc["series"]
        assert doc["points"]["serve.machines"]["1"], "raw tier must have points"
        # --perf prints the wall-clock stage table after the run report.
        assert "wall-clock stages (ms):" in out
        assert "engine.tick" in out
        assert "measurement overhead:" in out

    def test_tenants_with_http_no_longer_rejected(self, tmp_path, capsys):
        spec = tmp_path / "tenants.json"
        spec.write_text(json.dumps({
            "tenants": [
                {"name": "checkout", "profile": "poisson:rate=4"},
                {"name": "search", "profile": "poisson:rate=2"},
            ]
        }))
        code = main([
            "serve", "--clock", "virtual", "--port", "0", "--duration", "120",
            "--saturation", "12", "--db-size-mb", "5", "--control", "none",
            "--tenants", str(spec), "--linger", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving on http://127.0.0.1:" in out
        assert "tenant checkout:" in out

    def test_bad_spar_spec_rejected(self, capsys):
        code = main(self.SERVE_ARGS[:-1] + ["period=oops"])
        assert code == 2
        err = capsys.readouterr().err
        assert "period" in err and "oops" in err

    def test_bad_fault_token_exits_2_without_traceback(self, capsys):
        code = main(
            self.SERVE_ARGS
            + ["--profile", "poisson:rate=6", "--faults", "crash@10:nfoo"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "'foo'" in err and "crash@10:nfoo" in err
        assert "Traceback" not in err


class TestSoakSubcommand:
    SOAK_ARGS = [
        "soak", "--transport", "inproc", "--workers", "2",
        "--rate", "120", "--duration", "30", "--seed", "4",
        "--saturation", "200", "--queue-limit", "8",
    ]

    def test_soak_passes_and_writes_report(self, tmp_path, capsys):
        report = tmp_path / "soak.json"
        code = main(self.SOAK_ARGS + ["--report", str(report)])
        out = capsys.readouterr().out
        assert code == 0
        assert "gates: PASS" in out
        assert "(exact)" in out
        doc = json.loads(report.read_text())
        assert doc["format"] == "repro-soak-report/1"
        assert doc["passed"] is True

    def test_gate_breach_exits_nonzero(self, capsys):
        code = main(self.SOAK_ARGS + ["--max-p99", "0.001"])
        out = capsys.readouterr().out
        assert code == 1
        assert "GATE FAIL" in out

    def test_checkpoint_restore_round_trip(self, tmp_path, capsys):
        ckpt = tmp_path / "soak.ckpt"
        args = self.SOAK_ARGS + [
            "--checkpoint", str(ckpt), "--checkpoint-every", "10",
        ]
        assert main(args) == 0
        capsys.readouterr()
        code = main(args + ["--restore", str(ckpt)])
        out = capsys.readouterr().out
        assert code == 0
        assert "restored" in out
        assert "gates: PASS" in out

    def test_bad_flags_exit_2(self, capsys):
        code = main(["soak", "--workers", "0"])
        assert code == 2
        assert "worker" in capsys.readouterr().err


class TestTopSubcommand:
    def test_top_once_renders_live_frame(self, capsys):
        import asyncio
        import threading
        import time
        import urllib.request

        from repro.engine.simulator import EngineConfig
        from repro.serve import ServerEngine, poisson_arrivals
        from repro.serve.http import ServeApp
        from repro.telemetry import Telemetry, TimeSeriesStore

        engine = ServerEngine(
            EngineConfig(max_nodes=4, saturation_rate_per_node=60.0),
            initial_nodes=2,
            telemetry=Telemetry(),
        )
        app = ServeApp(
            engine,
            virtual=True,
            duration_s=60.0,
            linger_s=30.0,
            arrivals=poisson_arrivals(20.0, 60.0, seed=2),
            timeseries=TimeSeriesStore(),
        )
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(app.run(on_ready=lambda _: ready.set())),
            daemon=True,
        )
        thread.start()
        assert ready.wait(10), "server never bound"
        url = f"http://127.0.0.1:{app.port}"
        try:
            for _ in range(200):
                with urllib.request.urlopen(url + "/healthz") as response:
                    if json.load(response)["run_complete"]:
                        break
                time.sleep(0.05)
            code = main(["top", "--once", "--url", url])
            out = capsys.readouterr().out
        finally:
            request = urllib.request.Request(url + "/shutdown", method="POST")
            urllib.request.urlopen(request)
            thread.join(10)
        assert code == 0
        assert "repro top — status ok" in out
        assert "machines 2" in out
        # The sparkline section picked up the time-series store.
        assert "serve.machines:" in out

    def test_top_against_unreachable_server_exits_2(self, capsys):
        code = main(["top", "--once", "--url", "http://127.0.0.1:1"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err


class TestLoadgenSubcommand:
    def test_unreachable_server_exits_nonzero(self, capsys):
        code = main([
            "loadgen", "--url", "http://127.0.0.1:1",
            "--profile", "poisson:rate=3", "--duration", "2",
            "--speedup", "100",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "firing" in out and "rejected" in out


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(("a", "bbb"), [(1, 2), (33, 44)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_comparison_table(self):
        text = comparison_table(
            [PaperComparison("metric", "10", "11")], "Title"
        )
        assert "Title" in text
        assert "metric" in text and "10" in text and "11" in text
