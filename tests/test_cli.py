"""Tests for the experiment CLI and shared report helpers."""

import json

import pytest

from repro.cli import main
from repro.experiments import registry
from repro.experiments.common import PaperComparison, comparison_table, format_table
from repro.faults.runtime import default_fault_plan
from repro.telemetry import default_telemetry
from repro.telemetry.export import read_jsonl


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "Table 2" in out
        assert "ablations" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "completed in" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "fig2", "table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Table 1" in out

    def test_save_writes_reports(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["run", "table1", "--save", str(out_dir)]) == 0
        capsys.readouterr()
        saved = out_dir / "table1.txt"
        assert saved.exists()
        assert "Table 1" in saved.read_text()

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRegistryAliases:
    def test_dashed_alias_resolves(self):
        assert registry.get("fig9-elasticity") is registry.get("fig9")

    def test_unknown_id_lists_known(self):
        with pytest.raises(KeyError, match="fig9"):
            registry.get("fig99")


class TestTelemetryFlag:
    def test_run_writes_dump_and_restores_defaults(self, tmp_path, capsys):
        assert default_telemetry() is None
        dump_path = tmp_path / "out.jsonl"
        assert main(["run", "table1", "--telemetry", str(dump_path)]) == 0
        out = capsys.readouterr().out
        assert f"-> {dump_path}" in out
        # Scoped session: the process-wide defaults are back to None.
        assert default_telemetry() is None
        assert default_fault_plan() is None
        dump = read_jsonl(dump_path)
        assert dump.meta["experiment"] == "table1"
        assert dump.spans_named("experiment")
        assert dump.counters["experiments.runs"] == 1.0

    def test_report_round_trip(self, tmp_path, capsys):
        dump_path = tmp_path / "out.jsonl"
        assert main(["run", "table1", "--telemetry", str(dump_path)]) == 0
        capsys.readouterr()
        assert main(["report", str(dump_path)]) == 0
        out = capsys.readouterr().out
        assert "Run overview" in out
        assert "SLA violations" in out

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such telemetry dump" in capsys.readouterr().err


class TestBenchSubcommand:
    def _run_quick(self, extra, capsys):
        code = main(
            ["bench", "--quick", "--only", "schedule_construction"] + extra
        )
        return code, capsys.readouterr().out

    def test_quick_writes_output(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        code, out = self._run_quick(["--output", str(out_path)], capsys)
        assert code == 0
        report = json.loads(out_path.read_text())
        assert "schedule_construction" in report["kernels"]
        assert report["repeats"] == 1

    def test_compare_passes_within_tolerance(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(
            {"kernels": {"schedule_construction": {"median_ns": 10**12}}}
        ))
        code, out = self._run_quick(["--compare", str(baseline)], capsys)
        assert code == 0
        assert "all kernels within tolerance" in out

    def test_compare_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(
            {"kernels": {"schedule_construction": {"median_ns": 1}}}
        ))
        code, out = self._run_quick(["--compare", str(baseline)], capsys)
        assert code == 1
        assert "REGRESSION" in out


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(("a", "bbb"), [(1, 2), (33, 44)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_comparison_table(self):
        text = comparison_table(
            [PaperComparison("metric", "10", "11")], "Title"
        )
        assert "Title" in text
        assert "metric" in text and "10" in text and "11" in text
