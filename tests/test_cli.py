"""Tests for the experiment CLI and shared report helpers."""

import pytest

from repro.cli import main
from repro.experiments.common import PaperComparison, comparison_table, format_table


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "Table 2" in out
        assert "ablations" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "completed in" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "fig2", "table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Table 1" in out

    def test_save_writes_reports(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["run", "table1", "--save", str(out_dir)]) == 0
        capsys.readouterr()
        saved = out_dir / "table1.txt"
        assert saved.exists()
        assert "Table 1" in saved.read_text()

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(("a", "bbb"), [(1, 2), (33, 44)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_comparison_table(self):
        text = comparison_table(
            [PaperComparison("metric", "10", "11")], "Title"
        )
        assert "Title" in text
        assert "metric" in text and "10" in text and "11" in text
