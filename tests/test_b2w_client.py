"""Tests for the B2W workload generator and trace-replay client."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.b2w import schema as s
from repro.b2w.client import B2WClient
from repro.b2w.generator import (
    B2WWorkloadConfig,
    B2WWorkloadGenerator,
    access_skew_report,
)
from repro.workloads.trace import LoadTrace


class TestGenerator:
    def test_keys_unique(self):
        generator = B2WWorkloadGenerator()
        keys = generator.generate_cart_keys(1000)
        assert len(set(keys)) == 1000

    def test_deterministic(self):
        a = B2WWorkloadGenerator(B2WWorkloadConfig(seed=9)).generate_cart_keys(10)
        b = B2WWorkloadGenerator(B2WWorkloadConfig(seed=9)).generate_cart_keys(10)
        assert a == b

    def test_session_structure(self):
        generator = B2WWorkloadGenerator(B2WWorkloadConfig(seed=1))
        session = generator.session()
        names = [txn.procedure for txn in session]
        assert "AddLineToCart" in names
        # Cart operations share one key.
        cart_keys = {
            txn.key for txn in session if txn.procedure.endswith("Cart")
        }
        assert len(cart_keys) == 1

    def test_checkout_sessions_exist(self):
        generator = B2WWorkloadGenerator(B2WWorkloadConfig(seed=2))
        checkout_seen = False
        for _ in range(50):
            names = [txn.procedure for txn in generator.session()]
            if "CreateCheckoutPayment" in names:
                checkout_seen = True
                assert "ReserveStock" in names
                assert "CreateCheckout" in names
        assert checkout_seen

    def test_transactions_stream_count(self):
        generator = B2WWorkloadGenerator()
        stream = list(generator.transactions(137))
        assert len(stream) == 137


class TestAccessSkewReport:
    def test_uniform_weights(self):
        keys = [f"k{i}" for i in range(30000)]
        report = access_skew_report(keys, num_partitions=30)
        # 1000 keys/partition: binomial std is ~3.1%, so the hottest
        # partition lands within a few sigma of the mean.
        assert report["max_over_mean_pct"] < 12.0
        assert report["total"] == 30000

    def test_concentrated_weights_show_skew(self):
        keys = [f"k{i}" for i in range(1000)]
        weights = [1] * 1000
        weights[0] = 100000
        report = access_skew_report(keys, weights, num_partitions=30)
        assert report["max_over_mean_pct"] > 100.0


class TestClient:
    def test_sessions_commit(self):
        client = B2WClient.fresh(initial_nodes=2)
        stats = client.execute_many(500)
        assert stats.issued == 500
        assert stats.abort_rate < 0.01

    def test_replay_scales_trace(self):
        client = B2WClient.fresh(initial_nodes=1)
        trace = LoadTrace(np.array([100.0, 50.0, 25.0]), slot_seconds=60.0)
        stats = client.replay(trace, scale=0.1)
        assert stats.per_slot == [10, 5, 2]
        assert stats.issued == 17

    def test_stock_conservation_invariant(self):
        """available + reserved + purchased is invariant per SKU."""
        config = B2WWorkloadConfig(num_stock_items=50, seed=3)
        client = B2WClient.fresh(initial_nodes=2, workload=config)
        initial_total = 10**6
        client.execute_many(2000)
        for index in range(50):
            sku = client.generator.sku(index)
            row = client.cluster.route(sku).get(s.STOCK, sku)
            total = row["available"] + row["reserved"] + row["purchased"]
            assert total == initial_total, sku

    def test_data_lands_on_all_nodes(self):
        client = B2WClient.fresh(initial_nodes=3)
        client.execute_many(3000)
        rows_per_node = [node.row_count() for node in client.cluster.active_nodes()]
        assert all(count > 0 for count in rows_per_node)
        # Near-uniform thanks to hashing (Section 8.1's assumption).
        assert max(rows_per_node) < 2.0 * min(rows_per_node)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_any_seed_produces_valid_sessions(seed):
    generator = B2WWorkloadGenerator(B2WWorkloadConfig(seed=seed))
    session = generator.session()
    assert session, "sessions are never empty"
    assert session[-1].procedure in (
        "PurchaseStock", "DeleteCart", "GetCart", "DeleteLineFromCart",
        "CreateCheckoutPayment",
    )
