"""Shared fixtures and harness policy for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import SystemParameters

#: Per-test wall-clock ceiling (seconds) when pytest-timeout is
#: installed.  A hung socket/subprocess test then fails in minutes
#: instead of eating the whole CI job timeout.  Tests that legitimately
#: run long (soak, e2e) opt out with an explicit ``@pytest.mark.timeout``.
DEFAULT_TEST_TIMEOUT_S = 120


def pytest_configure(config: pytest.Config) -> None:
    # Register the marker so suites stay warning-free (and the marker is
    # inert) on machines without the pytest-timeout plugin.
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test wall-clock limit "
        "(enforced when pytest-timeout is installed)",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if not config.pluginmanager.hasplugin("timeout"):
        return
    for item in items:
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(DEFAULT_TEST_TIMEOUT_S))


@pytest.fixture
def params() -> SystemParameters:
    """Paper-default parameters with 5-minute planner intervals."""
    return SystemParameters(interval_seconds=300.0, partitions_per_node=6)


@pytest.fixture
def single_partition_params() -> SystemParameters:
    """One partition per node (the Figure 4 / Table 1 setting)."""
    return SystemParameters(interval_seconds=300.0, partitions_per_node=1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
