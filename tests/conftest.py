"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import SystemParameters


@pytest.fixture
def params() -> SystemParameters:
    """Paper-default parameters with 5-minute planner intervals."""
    return SystemParameters(interval_seconds=300.0, partitions_per_node=6)


@pytest.fixture
def single_partition_params() -> SystemParameters:
    """One partition per node (the Figure 4 / Table 1 setting)."""
    return SystemParameters(interval_seconds=300.0, partitions_per_node=1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
