"""Tests for the long-horizon capacity simulator (Section 8.3)."""

import numpy as np
import pytest

import repro.core.capacity as cap
from repro.core.params import SystemParameters
from repro.errors import ConfigurationError
from repro.simulation.capacity_sim import CapacitySimulator
from repro.strategies import ReactiveStrategy, StaticStrategy
from repro.strategies.base import AllocationStrategy, SimState
from repro.workloads.trace import LoadTrace

PARAMS = SystemParameters(interval_seconds=300.0, partitions_per_node=6)


class OneShotStrategy(AllocationStrategy):
    """Requests a single move at a fixed interval (test helper)."""

    name = "one-shot"

    def __init__(self, at_interval: int, target: int, initial: int) -> None:
        self.at_interval = at_interval
        self.target = target
        self.initial = initial

    def initial_machines(self, first_load_rate: float) -> int:
        return self.initial

    def decide(self, state: SimState):
        if state.interval == self.at_interval:
            return self.target
        return None


def flat(machine_multiples: float, intervals: int) -> LoadTrace:
    rate = machine_multiples * PARAMS.q
    return LoadTrace(np.full(intervals, rate * 300.0), slot_seconds=300.0)


class TestStaticRuns:
    def test_cost_is_machines_times_intervals(self):
        sim = CapacitySimulator(PARAMS, max_machines=10)
        result = sim.run(flat(1.0, 50), StaticStrategy(4))
        assert result.cost == pytest.approx(200.0)
        assert result.moves == 0
        assert result.pct_time_insufficient == 0.0

    def test_undersized_static_violates(self):
        sim = CapacitySimulator(PARAMS, max_machines=10)
        result = sim.run(flat(3.0, 50), StaticStrategy(2))
        # Violations are against Q_hat capacity: 3 Q > 2 Q_hat.
        assert result.pct_time_insufficient == pytest.approx(100.0)

    def test_buffer_zone_not_a_violation(self):
        # Load above Q*N but below Q_hat*N: degraded target, not an SLA
        # breach (this is the paper's Q vs Q_hat buffer).
        sim = CapacitySimulator(PARAMS, max_machines=10)
        result = sim.run(flat(2.2, 20), StaticStrategy(2))
        assert result.pct_time_insufficient == 0.0


class TestMoveAccounting:
    def test_move_cost_matches_equation4(self):
        sim = CapacitySimulator(PARAMS, max_machines=20)
        intervals = 40
        strategy = OneShotStrategy(at_interval=5, target=14, initial=3)
        result = sim.run(flat(1.0, intervals), strategy)
        duration = cap.move_time_intervals(3, 14, PARAMS)
        expected = (
            5 * 3  # before the move
            + cap.move_cost(3, 14, PARAMS)  # during (Equation 4)
            + (intervals - 5 - duration) * 14  # after
        )
        assert result.cost == pytest.approx(expected, rel=0.02)
        assert result.moves == 1

    def test_effective_capacity_during_move(self):
        sim = CapacitySimulator(PARAMS, max_machines=20)
        strategy = OneShotStrategy(at_interval=2, target=14, initial=3)
        result = sim.run(flat(1.0, 30), strategy)
        duration = cap.move_time_intervals(3, 14, PARAMS)
        for i in range(1, duration + 1):
            expected = cap.effective_capacity(3, 14, i / duration, PARAMS)
            measured = result.effective_machines[2 + i - 1] * PARAMS.q
            assert measured == pytest.approx(expected, rel=1e-6)
        # After the move, full capacity.
        assert result.effective_machines[2 + duration] == 14

    def test_reconfiguring_flag(self):
        sim = CapacitySimulator(PARAMS, max_machines=10)
        strategy = OneShotStrategy(at_interval=3, target=6, initial=3)
        result = sim.run(flat(1.0, 20), strategy)
        assert result.reconfiguring[3]
        assert not result.reconfiguring[0]
        assert not result.reconfiguring[-1]


class TestViolationSemantics:
    def test_peak_values_drive_violations(self):
        values = np.full(20, 1.0 * PARAMS.q * 300.0)
        peaks = values.copy()
        peaks[10] = 2.5 * PARAMS.q * 300.0  # burst beyond 1 machine's Q_hat
        trace = LoadTrace(values, slot_seconds=300.0, peak_values=peaks)
        sim = CapacitySimulator(PARAMS, max_machines=10)
        result = sim.run(trace, StaticStrategy(1))
        assert result.insufficient_mask().sum() == 1
        assert result.pct_time_insufficient == pytest.approx(5.0)

    def test_summary_fields(self):
        sim = CapacitySimulator(PARAMS, max_machines=10)
        result = sim.run(flat(1.0, 10), StaticStrategy(2))
        summary = result.summary()
        assert {"cost", "avg_machines", "pct_time_insufficient", "moves"} <= set(summary)

    def test_normalized_cost(self):
        sim = CapacitySimulator(PARAMS, max_machines=10)
        result = sim.run(flat(1.0, 10), StaticStrategy(2))
        assert result.normalized_cost(result.cost) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            result.normalized_cost(0.0)


class TestGuards:
    def test_slot_mismatch_rejected(self):
        sim = CapacitySimulator(PARAMS, max_machines=10)
        trace = LoadTrace(np.ones(10), slot_seconds=60.0)
        with pytest.raises(ConfigurationError):
            sim.run(trace, StaticStrategy(2))

    def test_rejects_bad_max_machines(self):
        with pytest.raises(ConfigurationError):
            CapacitySimulator(PARAMS, max_machines=0)

    def test_targets_clamped_to_max(self):
        sim = CapacitySimulator(PARAMS, max_machines=5)
        strategy = OneShotStrategy(at_interval=2, target=50, initial=2)
        result = sim.run(flat(1.0, 20), strategy)
        assert result.allocated.max() <= 5


class TestReactiveIntegration:
    def test_reactive_follows_a_square_wave(self):
        rate = np.concatenate([
            np.full(30, 1.5), np.full(30, 4.5), np.full(60, 1.5)
        ]) * PARAMS.q
        trace = LoadTrace(rate * 300.0, slot_seconds=300.0)
        sim = CapacitySimulator(PARAMS, max_machines=10)
        result = sim.run(trace, ReactiveStrategy(detect_intervals=1,
                                                 scale_in_intervals=5))
        # Scaled out for the high phase...
        assert result.target_machines[35:55].max() >= 5
        # ...and back down eventually.
        assert result.target_machines[-1] <= 3
        assert result.moves >= 2
