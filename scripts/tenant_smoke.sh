#!/usr/bin/env bash
# Multi-tenant serving smoke test (CI `tenant-smoke` job /
# `make tenant-smoke`).
#
# Writes a three-tenant spec file (a weight-3 storefront, a weight-2
# wikipedia-shaped read tier and a weight-1 batch tenant capped by a
# token-bucket quota), runs `repro serve --tenants` end to end on the
# virtual clock with SLO monitoring and a debug bundle, and asserts:
#   * the composite workload tagged all three tenants,
#   * the quota-capped tenant actually shed load (quota shed > 0),
#   * per-tenant conservation (offered = served + shed + errored +
#     in-flight) holds exactly for every tenant — any MISMATCH fails,
#   * the bundle's manifest digests verify and `repro.cli explain`
#     renders the per-tenant serving table.
# CI uploads the bundle as an artifact.  See docs/SERVING.md
# § Multi-tenant serving.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

BUNDLE="${BUNDLE_DIR:-out/tenant-smoke-bundle}"
SPEC=$(mktemp --suffix=.json)
OUT=$(mktemp)
trap 'rm -f "$SPEC" "$OUT"' EXIT
rm -rf "$BUNDLE"

cat >"$SPEC" <<'EOF'
{
  "tenants": [
    {"name": "storefront", "profile": "trace:kind=b2w,rate=25", "weight": 3,
     "latency_slo_ms": 2000.0, "slo_objective": 0.95},
    {"name": "wiki", "profile": "trace:kind=wikipedia,lang=en,days=1,rate=18",
     "weight": 2, "latency_slo_ms": 2000.0, "slo_objective": 0.95},
    {"name": "batch", "profile": "poisson:rate=12", "weight": 1,
     "quota_rps": 8.0, "latency_slo_ms": 2000.0, "slo_objective": 0.9}
  ]
}
EOF

python -m repro.cli serve --no-http --clock virtual --duration 1800 \
    --tenants "$SPEC" --seed 7 \
    --saturation 60 --db-size-mb 20 --nodes 2 --max-nodes 4 \
    --interval-seconds 60 --queue-limit 8 \
    --spar "period=12,periods=2,recent=2,horizon=4" \
    --slo "objective=0.95,latency=2000,fast=120,slow=600,burn=2" \
    --debug-bundle "$BUNDLE" | tee "$OUT"

grep -q 'tenants: storefront, wiki, batch' "$OUT" \
    || { echo "composite workload did not list all three tenants" >&2; exit 1; }
# The batch tenant offers 12 req/s against an 8 req/s bucket: its quota
# must have shed load, or tenancy enforcement is broken.
QUOTA_SHED=$(grep -oE 'tenant batch: offered [0-9]+ \| quota shed [0-9]+' "$OUT" \
    | grep -oE '[0-9]+$' || true)
[ "${QUOTA_SHED:-0}" -gt 0 ] \
    || { echo "quota-capped tenant never hit its token bucket" >&2; exit 1; }
# Per-tenant conservation: one exact line per tenant, zero mismatches.
if grep -q 'MISMATCH' "$OUT"; then
    echo "per-tenant conservation MISMATCH — requests dropped unaccounted" >&2
    exit 1
fi
for TENANT in storefront wiki batch; do
    grep -q "conservation{tenant=\"$TENANT\"}: .*(exact)" "$OUT" \
        || { echo "no exact conservation line for tenant $TENANT" >&2; exit 1; }
done

[ -f "$BUNDLE/MANIFEST.json" ] || { echo "no debug bundle at $BUNDLE" >&2; exit 1; }
python -c "from repro.telemetry.bundle import verify_bundle; verify_bundle('$BUNDLE')" \
    || { echo "bundle manifest failed verification" >&2; exit 1; }
EXPLAIN=$(python -m repro.cli explain "$BUNDLE")
echo "$EXPLAIN"
echo "$EXPLAIN" | grep -q 'Serving by tenant' \
    || { echo "explain is missing the per-tenant serving table" >&2; exit 1; }
echo "tenant smoke passed: 3 tenants, quota enforced, conservation exact"
