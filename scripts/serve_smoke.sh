#!/usr/bin/env bash
# Serving-layer smoke test (CI `serve-smoke` job / `make serve-smoke`).
#
# Boots `repro serve` on the virtual clock with an embedded spike
# profile — request tracing, SLO burn-rate monitoring and a debug
# bundle all enabled — waits for the bounded run to finish while the
# admin endpoints stay up, then asserts over HTTP that:
#   * /healthz answers and reports the run complete,
#   * /metrics is non-empty Prometheus text with the labelled
#     per-node admission counters,
#   * admission control shed load during the spike (rejected > 0 — the
#     150 txn/s spike peak exceeds the 2-node capacity ceiling, so
#     queues hit --queue-limit no matter how fast scale-out runs),
#   * at least one reconfiguration completed (exit code via
#     --require-moves 1).
# After shutdown it round-trips the exported debug bundle: the manifest
# digests must verify and `repro.cli explain` must render the planner
# decision audit (the run outlives the SPAR fit slot), the SLO alert
# fired during the spike, and the request-trace summary.  CI uploads
# the bundle as an artifact.
#
# `serve_smoke.sh --faults` runs the chaos variant instead (CI
# `chaos-serve-smoke` job / `make chaos-serve-smoke`): a no-HTTP
# virtual-clock run with a node crash + recovery mid-run under
# `--resilience`/`--retries`/`--checkpoint`, asserting that traffic hit
# the crashed node's stale routing view, that every breaker closed
# again after recovery, that request conservation (offered = served +
# shed + errored + in-flight) holds exactly, and that `--restore` from
# the mid-run checkpoint reproduces the uninterrupted run's report
# bit-for-bit.  See docs/ROBUSTNESS.md § Serving-path fault tolerance.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

chaos_smoke() {
    local BUNDLE="${BUNDLE_DIR:-out/chaos-serve-smoke-bundle}"
    local CKPT OUT1 OUT2
    CKPT=$(mktemp) OUT1=$(mktemp) OUT2=$(mktemp)
    rm -rf "$BUNDLE"
    trap 'rm -f "$CKPT" "$OUT1" "$OUT2"' RETURN

    # Node 1 crashes at t=90 and recovers at t=180; checkpoints land on
    # the 180 s cadence, so at least one is written while the fault plan
    # is already resolved and the run is quiescent.
    local ARGS=(
        python -m repro.cli serve --no-http --clock virtual --duration 600
        --profile "poisson:rate=10" --seed 7
        --saturation 12 --db-size-mb 5 --nodes 3 --max-nodes 4
        --interval-seconds 60 --queue-limit 8
        --spar "period=12,periods=2,recent=2,horizon=4"
        --faults "crash@90:n1:recover=90"
        --resilience "miss=3,open=20,halfopen=2,brownout=0.5,shed=1"
        --retries "max=3,base=1,cap=8,floor=200"
        --checkpoint "$CKPT" --checkpoint-every 180
    )

    "${ARGS[@]}" --debug-bundle "$BUNDLE" | tee "$OUT1"

    grep -q 'fault plan in force' "$OUT1" \
        || { echo "chaos run never installed the fault plan" >&2; return 1; }
    # The crashed node must have eaten traffic from the stale router
    # view before its breaker opened — otherwise the chaos was a no-op.
    ERRORS=$(grep -oE 'resilience: errors [0-9]+' "$OUT1" | grep -oE '[0-9]+$' || true)
    [ "${ERRORS:-0}" -gt 0 ] \
        || { echo "no requests hit the crashed node's stale view" >&2; return 1; }
    grep -q 'n1=closed' "$OUT1" \
        || { echo "breaker for the crashed node never closed again" >&2; return 1; }
    # Zero dropped-but-unaccounted requests: the conservation identity
    # must hold exactly.
    if grep -q 'MISMATCH' "$OUT1"; then
        echo "request conservation MISMATCH — requests dropped unaccounted" >&2
        return 1
    fi
    grep -q 'conservation: .*(exact)' "$OUT1" \
        || { echo "chaos run printed no conservation verdict" >&2; return 1; }
    grep -q 'checkpoints written:' "$OUT1" \
        || { echo "no checkpoint was written during the chaos run" >&2; return 1; }

    # Crash-recover the whole process: restore from the last mid-run
    # checkpoint and serve the remainder; the final report must be
    # bit-identical to the uninterrupted run's.
    "${ARGS[@]}" --restore "$CKPT" | tee "$OUT2"
    grep -q 'restored from' "$OUT2" \
        || { echo "restore leg did not resume from the checkpoint" >&2; return 1; }
    if ! diff <(grep -E '^(offered|throughput|latency|errors|conservation|resilience)' "$OUT1") \
              <(grep -E '^(offered|throughput|latency|errors|conservation|resilience)' "$OUT2"); then
        echo "restored run's report differs from the uninterrupted run" >&2
        return 1
    fi

    [ -f "$BUNDLE/MANIFEST.json" ] || { echo "no debug bundle at $BUNDLE" >&2; return 1; }
    python -c "from repro.telemetry.bundle import verify_bundle; verify_bundle('$BUNDLE')" \
        || { echo "bundle manifest failed verification" >&2; return 1; }
    echo "chaos smoke passed: conservation exact, breakers closed, restore bit-identical"
}

if [ "${1:-}" = "--faults" ]; then
    chaos_smoke
    exit $?
fi

OUT=$(mktemp)
BUNDLE="${BUNDLE_DIR:-out/serve-smoke-bundle}"
TS_DUMP="${TS_DUMP:-out/serve-smoke-timeseries.json}"
rm -rf "$BUNDLE"
mkdir -p "$(dirname "$TS_DUMP")"
rm -f "$TS_DUMP"
SERVER_PID=""

# Always reap the server: kill alone leaves a zombie until the shell
# exits, and an early failure path would otherwise never collect the
# child at all.  `wait` after kill is the reap; its status is the
# child's and deliberately ignored here — the cleanup path must not
# rewrite the script's own exit code under `set -e`.
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -f "$OUT"
}
trap cleanup EXIT

# 4800 s of virtual time: the small SPAR (period=12, recent=2) first
# fits at interval 62, so the audit trail has predictive replans to
# explain; the unpredicted spike at t=300 exercises shedding, the SLO
# alert and the reactive scale-out long before the model exists.
python -m repro.cli serve \
    --clock virtual --port 0 --duration 4800 \
    --profile "spike:rate=15,at=300,magnitude=10,ramp=60,plateau=300,decay=120" \
    --saturation 60 --db-size-mb 20 --nodes 1 --max-nodes 2 \
    --interval-seconds 60 --spar "period=12,periods=2,recent=2,horizon=4" \
    --queue-limit 5 --linger 120 --require-moves 1 \
    --trace-requests \
    --slo "objective=0.9,latency=60000,fast=120,slow=600,burn=2" \
    --timeseries "$TS_DUMP" --perf \
    --debug-bundle "$BUNDLE" >"$OUT" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 120); do
    PORT=$(grep -oE 'http://127\.0\.0\.1:[0-9]+' "$OUT" | head -1 | grep -oE '[0-9]+$' || true)
    if [ -n "$PORT" ] && curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "server exited before becoming healthy:" >&2
        cat "$OUT" >&2
        exit 1
    fi
    sleep 1
done
[ -n "$PORT" ] || { echo "server never published a port" >&2; cat "$OUT" >&2; exit 1; }
echo "server healthy on port $PORT"

# Wait for the virtual run itself to complete (healthz flips run_complete).
for _ in $(seq 1 180); do
    HEALTH=$(curl -sf "http://127.0.0.1:$PORT/healthz" || true)
    case "$HEALTH" in *'"run_complete": true'*) break ;; esac
    sleep 1
done
echo "healthz: $HEALTH"
case "$HEALTH" in
    *'"run_complete": true'*) ;;
    *) echo "run never completed" >&2; cat "$OUT" >&2; exit 1 ;;
esac
case "$HEALTH" in
    *'"rejected": 0,'*) echo "expected shed load during the spike" >&2; exit 1 ;;
esac
case "$HEALTH" in
    *'"slo"'*) ;;
    *) echo "healthz is missing the SLO state" >&2; exit 1 ;;
esac

METRICS=$(curl -sf "http://127.0.0.1:$PORT/metrics")
[ -n "$METRICS" ] || { echo "/metrics is empty" >&2; exit 1; }
echo "$METRICS" | grep -q '^repro_serve_admitted_total ' \
    || { echo "/metrics is missing serve counters" >&2; exit 1; }
echo "$METRICS" | grep -q '^repro_serve_admit_shed_total{node=' \
    || { echo "/metrics is missing labelled admission counters" >&2; exit 1; }
echo "$METRICS" | grep -q '^repro_slo_fast_burn ' \
    || { echo "/metrics is missing SLO burn gauges" >&2; exit 1; }
echo "$METRICS" | grep -q '^repro_perf_engine_tick_ms_count ' \
    || { echo "/metrics is missing the wall-clock perf families" >&2; exit 1; }
echo "/metrics: $(echo "$METRICS" | wc -l) lines"

# Live observability surface: the time-series API, the dashboard page
# and one frame of the terminal top view.
curl -sf "http://127.0.0.1:$PORT/timeseries" | python -c "
import json, sys
doc = json.load(sys.stdin)
assert 'serve.machines' in doc['series'], doc['series'][:5]
assert doc['windows'] == [1, 10, 100], doc['windows']
assert doc['samples'] > 0
" || { echo "/timeseries index is broken" >&2; exit 1; }
curl -sf "http://127.0.0.1:$PORT/timeseries?name=serve.machines&window=10" \
    | python -c "
import json, sys
doc = json.load(sys.stdin)
assert doc['points'], 'no rollup windows for serve.machines'
" || { echo "/timeseries named query is broken" >&2; exit 1; }
DASH=$(curl -sf "http://127.0.0.1:$PORT/dashboard")
case "$DASH" in
    *"<!doctype html>"*|*"<!DOCTYPE html>"*) ;;
    *) echo "/dashboard did not return HTML" >&2; exit 1 ;;
esac
echo "/dashboard: $(echo "$DASH" | wc -c) bytes"
TOP=$(python -m repro.cli top --once --url "http://127.0.0.1:$PORT")
echo "$TOP"
echo "$TOP" | grep -q 'repro top — status' \
    || { echo "repro top rendered no status header" >&2; exit 1; }
echo "$TOP" | grep -q 'serve.machines' \
    || { echo "repro top rendered no sparkline from the store" >&2; exit 1; }

curl -sf -X POST "http://127.0.0.1:$PORT/shutdown" >/dev/null
# Under `set -e` a bare `wait` would abort the script on a non-zero
# server exit before the log or status ever surfaced; capture it
# explicitly so the output is printed and the real code propagates.
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
cat "$OUT"
# --require-moves 1 makes a run without a completed reconfiguration exit 1.
if [ "$STATUS" -ne 0 ]; then
    echo "server exited with status $STATUS" >&2
    exit "$STATUS"
fi

# Round-trip the debug bundle: digests verify, explain renders the
# decision audit, the SLO alert and the request traces.
[ -f "$BUNDLE/MANIFEST.json" ] || { echo "no debug bundle at $BUNDLE" >&2; exit 1; }
python -c "from repro.telemetry.bundle import verify_bundle; verify_bundle('$BUNDLE')" \
    || { echo "bundle manifest failed verification" >&2; exit 1; }
EXPLAIN=$(python -m repro.cli explain "$BUNDLE")
echo "$EXPLAIN"
echo "$EXPLAIN" | grep -q 'replans audited' \
    || { echo "explain found no audited planner decisions" >&2; exit 1; }
echo "$EXPLAIN" | grep -q 'SLO burn-rate alerts' \
    || { echo "explain is missing the SLO alert section" >&2; exit 1; }
echo "$EXPLAIN" | grep -q 'fire' \
    || { echo "expected the SLO alert to fire during the spike" >&2; exit 1; }
echo "$EXPLAIN" | grep -q 'traced requests' \
    || { echo "explain is missing the request-trace summary" >&2; exit 1; }
echo "debug bundle verified and explained: $BUNDLE"

# The --timeseries PATH dump must have landed and parse as the
# versioned format (CI uploads it as an artifact).
[ -f "$TS_DUMP" ] || { echo "no timeseries dump at $TS_DUMP" >&2; exit 1; }
python -c "
import json
doc = json.load(open('$TS_DUMP'))
assert doc['format'] == 'repro-timeseries/1', doc['format']
assert doc['points'], 'dump has no points'
" || { echo "timeseries dump failed validation" >&2; exit 1; }
echo "timeseries dump verified: $TS_DUMP"

# ----------------------------------------------------------------------
# Tenant-tagged HTTP traffic: X-Tenant routing, 403 on unknown tenants,
# and the live views rendering per-tenant state.
# ----------------------------------------------------------------------
TENANT_SPEC=$(mktemp) TENANT_OUT=$(mktemp)
cat >"$TENANT_SPEC" <<'EOF'
{
  "tenants": [
    {"name": "checkout", "profile": "poisson:rate=4", "weight": 3,
     "latency_slo_ms": 2000.0, "slo_objective": 0.9},
    {"name": "search", "profile": "poisson:rate=2"}
  ]
}
EOF
tenant_cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -f "$OUT" "$TENANT_SPEC" "$TENANT_OUT"
}
trap tenant_cleanup EXIT

# Long virtual duration so the run is still in progress while we probe;
# the shutdown below ends it early via the graceful drain.
python -m repro.cli serve \
    --clock virtual --port 0 --duration 86400 \
    --tenants "$TENANT_SPEC" --control none \
    --saturation 60 --db-size-mb 20 --nodes 2 --max-nodes 2 \
    --queue-limit 5 --linger 120 --timeseries >"$TENANT_OUT" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 120); do
    PORT=$(grep -oE 'http://127\.0\.0\.1:[0-9]+' "$TENANT_OUT" | head -1 | grep -oE '[0-9]+$' || true)
    if [ -n "$PORT" ] && curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "tenant server exited before becoming healthy:" >&2
        cat "$TENANT_OUT" >&2
        exit 1
    fi
    sleep 1
done
[ -n "$PORT" ] || { echo "tenant server never published a port" >&2; cat "$TENANT_OUT" >&2; exit 1; }
echo "tenant server healthy on port $PORT"

CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H 'X-Tenant: checkout' "http://127.0.0.1:$PORT/txn")
[ "$CODE" = "200" ] || [ "$CODE" = "503" ] \
    || { echo "tagged /txn returned $CODE" >&2; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H 'X-Tenant: mallory' "http://127.0.0.1:$PORT/txn")
[ "$CODE" = "403" ] \
    || { echo "unknown tenant must be 403, got $CODE" >&2; exit 1; }
curl -sf "http://127.0.0.1:$PORT/metrics" \
    | grep -q '^repro_serve_tenant_rejected_total ' \
    || { echo "/metrics is missing the tenant rejection counter" >&2; exit 1; }
TOP=$(python -m repro.cli top --once --url "http://127.0.0.1:$PORT")
echo "$TOP" | grep -q 'checkout' \
    || { echo "repro top rendered no per-tenant rows" >&2; exit 1; }
curl -sf "http://127.0.0.1:$PORT/dashboard" >/dev/null \
    || { echo "tenant-mode /dashboard failed" >&2; exit 1; }
echo "tenant traffic smoke passed: tagged 200s, unknown 403, live views render"

curl -sf -X POST "http://127.0.0.1:$PORT/shutdown" >/dev/null
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "tenant server exited with status $STATUS" >&2
    cat "$TENANT_OUT" >&2
    exit "$STATUS"
fi
