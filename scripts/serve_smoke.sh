#!/usr/bin/env bash
# Serving-layer smoke test (CI `serve-smoke` job / `make serve-smoke`).
#
# Boots `repro serve` on the virtual clock with an embedded spike
# profile, waits for the bounded run to finish while the admin endpoints
# stay up, then asserts over HTTP that:
#   * /healthz answers and reports the run complete,
#   * /metrics is non-empty Prometheus text,
#   * admission control shed load during the spike (rejected > 0 — the
#     210 txn/s spike peak exceeds the 2-node capacity ceiling, so
#     queues hit --queue-limit no matter how fast scale-out runs),
#   * at least one reconfiguration completed (exit code via
#     --require-moves 1).
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src
OUT=$(mktemp)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$OUT"' EXIT

python -m repro.cli serve \
    --clock virtual --port 0 --duration 1200 \
    --profile "spike:rate=35,at=300,magnitude=6,ramp=60,plateau=300,decay=120" \
    --saturation 60 --db-size-mb 20 --nodes 1 --max-nodes 2 \
    --interval-seconds 60 --spar "period=12,periods=2,recent=2,horizon=4" \
    --queue-limit 5 --linger 120 --require-moves 1 >"$OUT" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 120); do
    PORT=$(grep -oE 'http://127\.0\.0\.1:[0-9]+' "$OUT" | head -1 | grep -oE '[0-9]+$' || true)
    if [ -n "$PORT" ] && curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "server exited before becoming healthy:" >&2
        cat "$OUT" >&2
        exit 1
    fi
    sleep 1
done
[ -n "$PORT" ] || { echo "server never published a port" >&2; cat "$OUT" >&2; exit 1; }
echo "server healthy on port $PORT"

# Wait for the virtual run itself to complete (healthz flips run_complete).
for _ in $(seq 1 120); do
    HEALTH=$(curl -sf "http://127.0.0.1:$PORT/healthz" || true)
    case "$HEALTH" in *'"run_complete": true'*) break ;; esac
    sleep 1
done
echo "healthz: $HEALTH"
case "$HEALTH" in
    *'"run_complete": true'*) ;;
    *) echo "run never completed" >&2; cat "$OUT" >&2; exit 1 ;;
esac
case "$HEALTH" in
    *'"rejected": 0,'*) echo "expected shed load during the spike" >&2; exit 1 ;;
esac

METRICS=$(curl -sf "http://127.0.0.1:$PORT/metrics")
[ -n "$METRICS" ] || { echo "/metrics is empty" >&2; exit 1; }
echo "$METRICS" | grep -q '^repro_serve_admitted_total ' \
    || { echo "/metrics is missing serve counters" >&2; exit 1; }
echo "/metrics: $(echo "$METRICS" | wc -l) lines"

curl -sf -X POST "http://127.0.0.1:$PORT/shutdown" >/dev/null
wait "$SERVER_PID"
STATUS=$?
cat "$OUT"
# --require-moves 1 makes a run without a completed reconfiguration exit 1.
exit "$STATUS"
