#!/usr/bin/env bash
# Distributed soak smoke test (CI `soak-smoke` job / `make soak-smoke`).
#
# Runs `repro soak`: an edge process routing a Poisson stream across a
# fleet of spawned worker shards over multiprocessing pipes — the
# api/worker process split — for 60 s of virtual time, with request
# tracing, SLO burn-rate monitoring and a debug bundle enabled.  The
# command itself gates on the soak report (p99 latency, shed rate, and
# the exact request-conservation identity offered = served + shed +
# errored + in-flight) and exits non-zero on any breach; the script
# re-asserts the verdicts from the printed report and round-trips the
# artifacts CI uploads:
#   * out/soak-report.json — the machine-readable gate report,
#   * out/soak-smoke-bundle — digest-verified debug bundle with the
#     merged cross-process telemetry.
# See docs/SERVING.md § Distributed serving.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

REPORT="${REPORT_PATH:-out/soak-report.json}"
BUNDLE="${BUNDLE_DIR:-out/soak-smoke-bundle}"
OUT=$(mktemp)
rm -rf "$BUNDLE"
rm -f "$REPORT"

# The soak's worker processes are children of the `repro soak` process
# and are reaped by its session teardown; the trap covers the script's
# own scratch state.  STATUS is captured explicitly so a gate breach
# (exit 1) still prints the report before the script propagates it.
trap 'rm -f "$OUT"' EXIT

STATUS=0
python -m repro.cli soak \
    --workers 3 --transport pipe \
    --rate 300 --duration 60 --seed 7 \
    --nodes 1 --max-nodes 4 --saturation 438 --queue-limit 8 \
    --max-p99 500 --max-shed-rate 0.2 \
    --trace-requests \
    --slo \
    --report "$REPORT" \
    --debug-bundle "$BUNDLE" | tee "$OUT" || STATUS=$?

if [ "$STATUS" -ne 0 ]; then
    echo "soak gates failed (exit $STATUS):" >&2
    grep 'GATE FAIL' "$OUT" >&2 || true
    exit "$STATUS"
fi

# Belt and braces on top of the command's own gating: the printed
# report must carry the exact-conservation verdict and the PASS line.
if grep -q 'MISMATCH' "$OUT"; then
    echo "request conservation MISMATCH — requests dropped unaccounted" >&2
    exit 1
fi
grep -q 'conservation: .*(exact)' "$OUT" \
    || { echo "soak printed no conservation verdict" >&2; exit 1; }
grep -q 'gates: PASS' "$OUT" \
    || { echo "soak report is missing the gate verdict" >&2; exit 1; }

[ -f "$REPORT" ] || { echo "no soak report at $REPORT" >&2; exit 1; }
python - "$REPORT" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["format"] == "repro-soak-report/1", doc.get("format")
assert doc["passed"] is True, doc["failures"]
assert doc["conserved"] is True
assert doc["offered"] > 0
PY
echo "soak report verified: $REPORT"

[ -f "$BUNDLE/MANIFEST.json" ] || { echo "no debug bundle at $BUNDLE" >&2; exit 1; }
python -c "from repro.telemetry.bundle import verify_bundle; verify_bundle('$BUNDLE')" \
    || { echo "bundle manifest failed verification" >&2; exit 1; }
echo "soak smoke passed: gates green, conservation exact, bundle verified"
