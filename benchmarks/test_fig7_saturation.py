"""Benchmark: regenerate Figure 7 (single-machine saturation sweep).

Paper: the B2W workload saturates one H-Store node at 438 txn/s;
Q_hat = 350 (80%) and Q = 285 (65%).
"""

from conftest import report, run_once

from repro.experiments import fig7_saturation


def test_fig7_saturation(benchmark):
    result = run_once(benchmark, fig7_saturation.run)
    report(result)
    assert 400 <= result.saturation_rate <= 470        # paper: 438
    assert result.derived.q_max == 0.80 * result.saturation_rate
    assert result.derived.q == 0.65 * result.saturation_rate
    # Latency explodes past saturation while throughput plateaus.
    last = result.levels[-1]
    assert last.served < last.offered
    assert last.p99_ms > 2000
