"""Benchmark: regenerate Figure 13 (effective capacity around Black
Friday for P-Store, Simple and Static).
"""

from conftest import report, run_once

from repro.experiments import fig13_black_friday


def test_fig13_black_friday(benchmark):
    result = run_once(benchmark, fig13_black_friday.run)
    report(result)
    regular = {
        n: result.window_stats(n, result.regular_window) for n in result.results
    }
    friday = {
        n: result.window_stats(n, result.black_friday_window)
        for n in result.results
    }
    # Simple looks workable on a regular stretch...
    assert regular["simple"].pct_time_insufficient < 2.0
    # ...but breaks down on the Black Friday surge.
    assert friday["simple"].pct_time_insufficient > regular["simple"].pct_time_insufficient
    assert friday["simple"].pct_time_insufficient > 1.0
    # Static cannot absorb the surge either.
    assert friday["static"].pct_time_insufficient > 0.5
    # P-Store (predictive + reactive fallback) handles it.
    assert friday["pstore-spar"].pct_time_insufficient < 0.5
