#!/usr/bin/env python
"""Thin wrapper over :mod:`repro.bench` for running from a checkout:

    PYTHONPATH=src python benchmarks/run_bench.py [--repeats N] [--output-dir D]

Equivalent to the ``repro-bench`` console script of an installed package,
and to ``make bench``.
"""

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main())
