"""Benchmark: regenerate Figure 6 (SPAR on Wikipedia en/de)."""

from conftest import report, run_once

from repro.experiments import fig6_spar_wikipedia


def test_fig6_spar_wikipedia(benchmark):
    result = run_once(benchmark, fig6_spar_wikipedia.run)
    report(result)
    en, de = result.mre_pct["en"], result.mre_pct["de"]
    # Paper: English predictable at every horizon; German under 10% up
    # to 2 hours and within ~13% at 6 hours.
    for tau in result.taus:
        assert en[tau] < de[tau]
    assert de[2] < 10.0
    assert de[6] < 16.0
