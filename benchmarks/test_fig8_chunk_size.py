"""Benchmark: regenerate Figure 8 (migration chunk-size sweep).

Paper: 1000 kB chunks keep p99 only slightly above a static system;
larger chunks finish no faster per-byte but spike the tail latency.
"""

from conftest import report, run_once

from repro.experiments import fig8_chunk_size


def test_fig8_chunk_size(benchmark):
    result = run_once(benchmark, fig8_chunk_size.run)
    report(result)
    by = result.by_chunk()
    static = by[None]
    small = by[1000.0]
    large = by[8000.0]
    assert small.p99_ms_max < 500.0                      # within the SLA
    assert small.p99_ms_max < 1.5 * static.p99_ms_max    # "slightly larger"
    assert large.p99_ms_max > 3.0 * small.p99_ms_max     # big chunks spike
    # p99 grows monotonically with chunk size.
    chunk_p99 = [by[c].p99_ms_max for c in sorted(k for k in by if k)]
    assert chunk_p99 == sorted(chunk_p99)
    # Derived D lands near the paper's 4646 s.
    assert 4000 < result.derived_d_seconds < 5600
