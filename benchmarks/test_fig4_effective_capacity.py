"""Benchmark: regenerate Figure 4 (effective capacity during moves)."""

from conftest import report, run_once

from repro.experiments import fig4_effective_capacity


def test_fig4_effective_capacity(benchmark):
    result = run_once(benchmark, fig4_effective_capacity.run)
    report(result)
    assert result.profiles[(3, 5)].schedule.num_rounds == 3
    assert result.profiles[(3, 9)].schedule.num_rounds == 6
    assert result.profiles[(3, 14)].schedule.num_rounds == 11
    # The bigger the move, the further effective capacity lags the
    # allocated machine count (the Figure 4c warning).
    def max_lag(profile):
        return max(
            a - e
            for a, e in zip(profile.machines_allocated, profile.effective_machines)
        )

    small_lag = max_lag(result.profiles[(3, 5)])
    large_lag = max_lag(result.profiles[(3, 14)])
    assert large_lag > 3 * small_lag
    assert large_lag > 4.0  # several machines' worth of missing capacity
