"""Benchmark: regenerate Figure 3 (the planner-goal schematic)."""

from conftest import report, run_once

from repro.experiments import fig3_planner_goal


def test_fig3_planner_goal(benchmark):
    result = run_once(benchmark, fig3_planner_goal.run)
    report(result)
    assert result.plan.moves[0].before == 2
    assert result.final_machines == 4
    assert result.capacity_always_exceeds_demand()
