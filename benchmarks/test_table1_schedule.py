"""Benchmark: regenerate Table 1 (3 -> 14 migration schedule)."""

from conftest import report, run_once

from repro.experiments import table1_schedule


def test_table1_schedule(benchmark):
    result = run_once(benchmark, table1_schedule.run)
    report(result)
    assert result.schedule.num_rounds == 11        # paper: 11 rounds
    assert result.naive_rounds == 12               # paper: >= 12 naive
    assert result.rounds_by_phase == {1: 6, 2: 2, 3: 3}
