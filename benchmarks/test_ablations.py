"""Benchmark: the design-choice ablations DESIGN.md calls out.

1. Equation 7-aware planning vs naive full-capacity planning.
2. Three-phase scheduling vs naive blocks.
3. Scale-in confirmation (churn suppression).
4. Prediction-inflation sweep (cost vs violation risk).
"""

from conftest import report, run_once

from repro.experiments import ablations


def test_ablations(benchmark):
    result = run_once(benchmark, ablations.run)
    report(result)
    # 1. Naive planning under-provisions; Eq. 7 planning never does.
    assert result.effcap.naive_true_violations > 0
    assert result.effcap.aware_true_violations == 0
    # 2. The three-phase schedule saves rounds on every phase-3 move.
    assert result.schedule.total_saved_rounds > 0
    # 3. Confirmation reduces reconfiguration churn.
    by_conf = {p.label: p for p in result.policy.confirmation}
    assert by_conf["3"].moves < by_conf["1"].moves
    # 4. Inflation buys violation headroom with cost.
    by_infl = {p.label: p for p in result.policy.inflation}
    assert by_infl["30%"].cost > by_infl["0%"].cost
    assert (
        by_infl["30%"].pct_time_insufficient
        <= by_infl["0%"].pct_time_insufficient
    )
    # 5. Under-sized forecast windows block scale-ins -> higher cost.
    by_h = {int(p.label): p for p in result.horizon.points}
    assert by_h[min(by_h)].cost > 1.02 * by_h[max(by_h)].cost
    # 6. The DP dominates the greedy predictive rule.
    assert result.greedy.dp_point.cost < result.greedy.greedy_point.cost
    assert (
        result.greedy.dp_point.pct_time_insufficient
        <= result.greedy.greedy_point.pct_time_insufficient + 1e-9
    )
