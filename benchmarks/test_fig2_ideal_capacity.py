"""Benchmark: regenerate Figure 2 (ideal vs stepped capacity)."""

import numpy as np
from conftest import report, run_once

from repro.experiments import fig2_ideal_capacity


def test_fig2_ideal_capacity(benchmark):
    result = run_once(benchmark, fig2_ideal_capacity.run)
    report(result)
    assert np.all(result.stepped_servers * result.q >= result.demand)
    assert result.avg_stepped_servers >= result.avg_ideal_servers
    assert result.avg_stepped_servers < 1.25 * result.avg_ideal_servers
