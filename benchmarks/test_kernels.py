"""Micro-benchmarks of the core computational kernels.

These time the hot paths the online system exercises every control
cycle: the DP planner, SPAR fitting and prediction, migration-schedule
construction and the engine's step function.
"""

import numpy as np
import pytest

from repro.core.params import SystemParameters
from repro.core.planner import Planner
from repro.core.schedule import build_move_schedule
from repro.engine.simulator import EngineConfig, EngineSimulator
from repro.prediction.spar import SPARPredictor
from repro.workloads.b2w import generate_b2w_trace

PARAMS = SystemParameters(interval_seconds=300.0, partitions_per_node=6)


def test_planner_best_moves(benchmark):
    """One receding-horizon planning cycle (12 intervals, Z up to 10)."""
    planner = Planner(PARAMS, max_machines=12)
    rng = np.random.default_rng(0)
    load = (np.linspace(1.0, 8.0, 13) + rng.uniform(0, 0.2, 13)) * PARAMS.q
    plan = benchmark(planner.best_moves, load, 2)
    assert plan.final_machines >= 8


def test_spar_fit(benchmark):
    """Fitting SPAR on 4 weeks of 5-minute data, 12 horizons."""
    trace = generate_b2w_trace(28, slot_seconds=300.0, seed=5)
    model = SPARPredictor(period=288, n_periods=7, n_recent=12, max_horizon=12)
    benchmark(model.fit, trace.values)


def test_spar_predict(benchmark):
    """One online 12-step forecast (what the controller runs per cycle)."""
    trace = generate_b2w_trace(35, slot_seconds=300.0, seed=5)
    model = SPARPredictor(period=288, n_periods=7, n_recent=12, max_horizon=12)
    model.fit(trace.values[: 28 * 288])
    history = trace.values[: 30 * 288]
    forecast = benchmark(model.predict, history, 12)
    assert forecast.shape == (12,)


def test_schedule_construction(benchmark):
    """Building and validating the Table 1 schedule (3 -> 14)."""
    def build():
        return build_move_schedule(3, 14, partitions_per_node=6)

    schedule = benchmark(build)
    assert schedule.num_rounds == 11


@pytest.mark.parametrize("horizon", [12, 26, 52])
def test_planner_scaling_with_horizon(benchmark, horizon):
    """DP cost grows ~linearly with the horizon (O(T * Z^2 * T_move))."""
    planner = Planner(PARAMS, max_machines=12)
    rng = np.random.default_rng(horizon)
    load = (
        np.linspace(1.0, 9.0, horizon + 1) + rng.uniform(0, 0.3, horizon + 1)
    ) * PARAMS.q
    plan = benchmark(planner.best_moves, load, 2)
    assert plan.final_machines >= 9


def test_planner_tables_memoized():
    """Planners built from equal parameters share one table set."""
    first = Planner(PARAMS, max_machines=48)
    second = Planner(
        SystemParameters(interval_seconds=300.0, partitions_per_node=6),
        max_machines=48,
    )
    assert first._tables is second._tables


def test_second_planning_cycle_not_slower():
    """Receding-horizon replanning reuses the memoized move tables, so a
    second cycle (tables warm) must not be slower than the first (tables
    cold — parameters unique to this test, so nothing is pre-cached)."""
    import time

    params = SystemParameters(interval_seconds=299.0, partitions_per_node=6)
    rng = np.random.default_rng(1)
    load = (np.linspace(1.0, 30.0, 25) + rng.uniform(0, 0.3, 25)) * params.q

    start = time.perf_counter()
    Planner(params, max_machines=48).best_moves(load, 4)
    first_cycle = time.perf_counter() - start

    start = time.perf_counter()
    Planner(params, max_machines=48).best_moves(load, 4)
    second_cycle = time.perf_counter() - start

    assert second_cycle <= first_cycle * 1.25


def test_engine_step_rate(benchmark):
    """1000 one-second engine steps on a 10-node cluster."""
    sim = EngineSimulator(EngineConfig(max_nodes=10), initial_nodes=10)

    def run_steps():
        for _ in range(1000):
            sim.step(2000.0)

    benchmark.pedantic(run_steps, rounds=1, iterations=1, warmup_rounds=0)
