"""Benchmark: regenerate the Section 8.1 uniformity analysis.

Paper: over 30 partitions, the hottest partition receives 10.15% more
accesses than average (stddev 2.62%); data skew is 0.185% / 0.099%.
"""

from conftest import report, run_once

from repro.experiments import sec81_uniformity


def test_sec81_uniformity(benchmark):
    result = run_once(benchmark, sec81_uniformity.run)
    report(result)
    access = result.access_report
    data = result.data_report
    # Access skew is single-digit percent; data skew is far smaller
    # (the uniform-workload assumption of Section 4.2 holds).
    assert access["max_over_mean_pct"] < 20.0
    assert data["max_over_mean_pct"] < access["max_over_mean_pct"]
    assert data["stddev_over_mean_pct"] < 1.0
