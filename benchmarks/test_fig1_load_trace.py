"""Benchmark: regenerate Figure 1 (B2W load over three days)."""

from conftest import report, run_once

from repro.experiments import fig1_load_trace


def test_fig1_load_trace(benchmark):
    result = run_once(benchmark, fig1_load_trace.run)
    report(result)
    assert 1.5e4 < result.peak_per_minute < 4e4       # paper: ~2.3e4
    assert 6 < result.peak_to_trough < 18             # paper: ~10x
    assert result.day_shape_correlation > 0.8
