"""Benchmark: regenerate Figure 9, Table 2 and Figure 10.

The full pipeline: a 3-day B2W-like trace replayed at 10x speed against
the simulated engine under four elasticity approaches (static-10,
static-4, reactive, P-Store), then the Table 2 SLA accounting and the
Figure 10 top-1% latency CDFs — all from the same runs, as in the paper.
"""

from conftest import report, run_once

from repro.experiments import fig9_elasticity, fig10_latency_cdfs

_cache = {}


def _result():
    if "fig9" not in _cache:
        _cache["fig9"] = fig9_elasticity.run(fast=False)
    return _cache["fig9"]


def test_fig9_and_table2(benchmark):
    result = run_once(benchmark, _result)
    report(result)
    runs = result.runs
    pstore = runs["pstore"].report
    reactive = runs["reactive"].report
    static10 = runs["static-10"].report
    static4 = runs["static-4"].report

    # Paper Table 2's orderings:
    # P-Store causes far fewer tail violations than reactive (~72% fewer).
    assert pstore.violations_p99 < 0.6 * reactive.violations_p99
    # P-Store uses about half the machines of peak provisioning.
    assert 0.35 < pstore.average_machines / static10.average_machines < 0.70
    # Static-4 is much worse than static-10 at the tail.
    assert static4.violations_p99 > 10 * max(static10.violations_p99, 1)
    # Reactive is the worst elastic approach.
    assert reactive.violations_p99 >= pstore.violations_p99
    # No approach violates the median SLA except under sustained overload.
    assert pstore.violations_p50 == 0


def test_fig10_latency_cdfs(benchmark):
    cdfs = run_once(benchmark, fig10_latency_cdfs.from_fig9, _result())
    report(cdfs)
    # Reactive worst and static-10 best at the p99 tail (Figure 10).
    med = cdfs.median_of_top1
    assert med("reactive", "p99") >= med("pstore", "p99")
    assert med("static-10", "p99") <= med("pstore", "p99")
    assert med("static-10", "p95") <= med("static-4", "p95")
