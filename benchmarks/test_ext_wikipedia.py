"""Benchmark: the full P-Store pipeline on Wikipedia-like workloads.

An extension beyond the paper (which validates SPAR on Wikipedia but
evaluates the full system only on B2W): SPAR + planner + capacity
simulation on the hourly en/de traces versus reactive and static.
"""

from conftest import report, run_once

from repro.experiments import ext_wikipedia_provisioning


def test_ext_wikipedia_provisioning(benchmark):
    result = run_once(benchmark, ext_wikipedia_provisioning.run)
    report(result)
    for language in ("en", "de"):
        by = result.results[language]
        # P-Store is far cheaper than static peak provisioning...
        assert by["pstore-spar"].cost < 0.7 * by["static-10"].cost
        # ...and at least as cheap as the reactive baseline here
        # (hourly reactive scale-in is sluggish).
        assert by["pstore-spar"].cost <= by["reactive"].cost
        assert by["pstore-spar"].pct_time_insufficient < 1.0
    # The less predictable edition pays more violations under SPAR.
    assert (
        result.results["de"]["pstore-spar"].pct_time_insufficient
        >= result.results["en"]["pstore-spar"].pct_time_insufficient
    )
