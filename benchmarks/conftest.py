"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at full
scale, prints a paper-vs-measured report, and asserts the qualitative
shape.  ``pytest benchmarks/ --benchmark-only`` runs them all; each
experiment executes once (rounds=1) since the workloads are large.
"""

from __future__ import annotations


def run_once(benchmark, runner, *args, **kwargs):
    """Execute ``runner`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(runner, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def report(result) -> None:
    """Print an experiment's paper-vs-measured report."""
    print()
    print(result.format_report())
