"""Benchmark: regenerate Figure 11 (unexpected spike, rate R vs R x 8).

Paper: when a flash crowd defeats the predictions, scaling at R x 8
trades a little extra median latency for far fewer tail violations —
violations drop from 16/101/143 (p50/p95/p99) to 22/44/51.
"""

from conftest import report, run_once

from repro.experiments import fig11_spike_reaction


def test_fig11_spike_reaction(benchmark):
    result = run_once(benchmark, fig11_spike_reaction.run)
    report(result)
    normal = result.runs["rate-R"].report
    boosted = result.runs["rate-Rx8"].report
    # The spike actually hurt at the normal rate.
    assert normal.violations_p99 > 20
    # Boosting cuts the tail sharply...
    assert boosted.violations_p99 < 0.6 * normal.violations_p99
    # ...and reduces the total seconds in violation.
    total = lambda r: r.violations_p50 + r.violations_p95 + r.violations_p99
    assert total(boosted) < total(normal)
