"""Benchmark: regenerate the Section 5 model comparison (SPAR/ARMA/AR).

Paper: MRE at tau=60 on B2W is 10.4% (SPAR), 12.2% (ARMA), 12.5% (AR).
"""

from conftest import report, run_once

from repro.experiments import sec5_model_comparison


def test_sec5_model_comparison(benchmark):
    result = run_once(benchmark, sec5_model_comparison.run)
    report(result)
    mre = result.mre_pct
    assert mre["spar"] < mre["arma"] < mre["persistence"]
    assert mre["spar"] < mre["ar"]
    assert mre["spar"] < mre["seasonal-naive"]
