"""Benchmark: regenerate Figure 12 (cost vs insufficient capacity,
4.5 months of simulated load including Black Friday).
"""

from conftest import report, run_once

from repro.experiments import fig12_cost_capacity


def test_fig12_cost_capacity(benchmark):
    result = run_once(benchmark, fig12_cost_capacity.run)
    report(result)
    spar = result.default_point("pstore-spar")
    oracle = result.default_point("pstore-oracle")
    reactive = result.default_point("reactive")

    # Oracle is the upper bound, but not zero (sub-slot spikes).
    assert oracle.pct_time_insufficient <= spar.pct_time_insufficient + 0.05
    assert oracle.pct_time_insufficient > 0.0
    # At comparable cost, reactive violates much more than P-Store.
    assert reactive.cost < 1.15 * spar.cost
    assert reactive.pct_time_insufficient > 2.0 * spar.pct_time_insufficient
    # P-Store default uses about half the machines of static-10.
    static10 = next(
        p for p in result.points if p.strategy == "static" and p.parameter == 10
    )
    assert 0.4 < spar.avg_machines / static10.avg_machines < 0.65
    # Sweeping Q traces the capacity-cost trade-off (cost falls, risk rises).
    spar_points = sorted(
        (p for p in result.points if p.strategy == "pstore-spar"),
        key=lambda p: p.parameter,
    )
    costs = [p.cost for p in spar_points]
    assert costs == sorted(costs, reverse=True)
    # Static-4 is catastrophic; the simple strategy is poor.
    static4 = next(
        p for p in result.points if p.strategy == "static" and p.parameter == 4
    )
    assert static4.pct_time_insufficient > 20.0
