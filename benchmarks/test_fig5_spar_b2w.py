"""Benchmark: regenerate Figure 5 (SPAR on B2W, full 4-week protocol)."""

from conftest import report, run_once

from repro.experiments import fig5_spar_b2w


def test_fig5_spar_b2w(benchmark):
    result = run_once(benchmark, fig5_spar_b2w.run)
    report(result)
    taus = sorted(result.mre_pct)
    # Paper: MRE decays gracefully, ~6% at short horizons to 10.4% at 60.
    assert result.mre_pct[taus[0]] <= result.mre_pct[taus[-1]]
    assert 4.0 < result.mre_pct[taus[0]] < 9.0
    assert 7.0 < result.mre_pct[60] < 14.0
